//! Versioned binary codec for [`FleetSnapshot`] and [`FleetDelta`].
//!
//! Layout: magic `b"OSSTLFLT"`, `u16` version, `u8` kind (0 = full image,
//! 1 = incremental delta), then the fields in a fixed order. All integers
//! are little-endian; `f64` round-trips via [`f64::to_bits`], so restored
//! values are **bit-identical** — the basis of the snapshot determinism
//! guarantee. The format is self-contained: per-series detector configs
//! are encoded with each series, so a snapshot survives engine-level
//! config changes between writer and reader.
//!
//! A delta (v3) additionally carries the batch seq of the image it chains
//! onto (`prev_batches`) and a tombstone list of keys removed since then;
//! folding it onto that image ([`FleetDelta::fold_into`]) reproduces the
//! full snapshot bit-exactly.
//!
//! v4 adds the §3.4 shift-search pipeline configuration to every encoded
//! detector config, and pending per-series [`AdmitOptions`] to every
//! warming-phase series. v3 images still decode (read-compat): their
//! detector configs get [`oneshotstl::ShiftPrune::Off`] — the exhaustive
//! search every v3 writer actually ran, so a restored v3 stream continues
//! bit-identically — and their warming series carry no overrides.
//!
//! v5 adds the persistence-aware residual scoring layer
//! ([`oneshotstl::score`]): the engine-wide [`ScoreConfig`], a full
//! [`ResidualScorerState`] (config + CUSUM accumulators + peak-hold) per
//! live series where v4 stored only the plain NSigma statistics, and an
//! optional per-series `score` override in [`AdmitOptions`]. v3/v4 images
//! still decode: their live series get a scorer with
//! [`oneshotstl::Fusion::Off`] wrapped around the decoded NSigma
//! statistics — bit-identical to the plain-NSigma scoring every v3/v4
//! writer ran — and their configs/overrides carry
//! [`ScoreConfig::off`]/no override.
//!
//! v6 adds the forecasting layer: the engine-wide
//! [`crate::ForecastOptions`], an optional per-series `forecast` override
//! in [`AdmitOptions`], and an optional forecast-head state (pending
//! one-step prediction + rolling error tracker rings) per live series.
//! v3–v5 images still decode: they get forecasting disabled — what every
//! pre-v6 writer actually ran — and their live series carry no head, so a
//! restored stream continues bit-identically.
//!
//! v7 adds the detection-backend layer ([`crate::backend`]): the
//! engine-wide [`BackendSelect`], an optional per-series `backend`
//! override in [`AdmitOptions`], and an optional backend state (streaming
//! DAMP window + distance normalizer, trend-innovation CUSUM, or the
//! ensemble of both) per live series. v3–v6 images still decode: they get
//! [`BackendSelect::Fused`] — the plain fused-scorer pipeline every
//! pre-v7 writer ran — and their live series carry no backend state, so a
//! restored stream continues bit-identically.
//!
//! v8 adds the robustness layer: three health counters in
//! [`CarriedTotals`] (WAL re-arm attempts, shard restarts, un-durable
//! batches) and the `Quarantined` series phase (cause + dropped count).
//! v3–v7 images still decode: their counters start at 0 and no pre-v8
//! writer ever quarantined a series.
//!
//! v9 adds the tiered-state layer: the engine-wide
//! [`StateCompression`] selection and `spill_after` cold-tier threshold
//! in the config, and a tag byte in front of every decomposer/solver
//! state vector — tag 0 is the exact `f64` layout, tag 1 the compact
//! delta-encoded form (first element as `f64` bits, every later element
//! as the `f32` delta from its reconstructed predecessor). Compact is
//! lossy at `f32`-delta precision but stable under re-encode, so
//! repeated snapshot cycles do not drift. v3–v8 images still decode:
//! their vectors are untagged plain `f64`s, compression comes back
//! [`StateCompression::Exact`], and no pre-v9 writer spilled.

use crate::backend::{
    BackendSelect, BackendSnapshot, DampBackendState, DampOptions, EnsembleFusion,
    EnsembleOptions, SeriesBackend,
};
use crate::config::{AdmitOptions, ForecastOptions, QueuePolicy, StateCompression};
use crate::engine::{CarriedTotals, FleetDelta, FleetSnapshot};
use crate::error::CodecError;
use crate::series::{ForecastSnapshot, PhaseSnapshot, QuarantineCause};
use crate::shard::SeriesSnapshot;
use crate::types::SeriesKey;
use crate::{FleetConfig, PeriodPolicy};
use oneshotstl::oneshot::InitMethod;
use oneshotstl::system::Lambdas;
use oneshotstl::{
    Fusion, IterSnapshot, NSigmaState, OneShotStlConfig, OneShotStlState, ResidualScorerState,
    ScoreConfig, ShiftPolicy, ShiftPrune, ShiftSearchConfig, SolverState,
};

const MAGIC: &[u8; 8] = b"OSSTLFLT";
// v2: FleetConfig gained queue_capacity + queue_policy (backpressure)
// v3: kind byte after the version; kind 1 = incremental delta snapshots
// v4: detector configs gained the shift-search pipeline config; warming
//     series gained pending per-series AdmitOptions
// v5: FleetConfig gained the residual ScoreConfig; live series store a
//     full ResidualScorerState (was: plain NSigma stats); AdmitOptions
//     gained an optional score override
// v6: FleetConfig gained ForecastOptions; AdmitOptions gained an optional
//     forecast override; live series gained an optional forecast-head
//     state (pending prediction + rolling error tracker)
// v7: FleetConfig gained the detection-backend selection; AdmitOptions
//     gained an optional backend override; live series gained an optional
//     backend state (streaming DAMP + normalizer, trend CUSUM, ensemble)
// v8: CarriedTotals gained the health counters (wal_retries,
//     shard_restarts, undurable_batches); series gained the Quarantined
//     phase (tag 3: cause + dropped count)
// v9: FleetConfig gained the StateCompression selection and the
//     spill_after cold-tier threshold; decomposer/solver state vectors
//     gained a layout tag (0 = exact f64, 1 = delta-encoded f32)
pub(crate) const VERSION: u16 = 9;
/// Oldest version this build still decodes.
const MIN_VERSION: u16 = 3;
const KIND_FULL: u8 = 0;
const KIND_DELTA: u8 = 1;

/// Serializes a snapshot to the versioned binary format.
pub fn encode(snapshot: &FleetSnapshot) -> Vec<u8> {
    let mut w = Writer::default();
    w.bytes(MAGIC);
    w.u16(VERSION);
    w.u8(KIND_FULL);
    encode_config(&mut w, &snapshot.config);
    w.u64(snapshot.clock);
    w.u64(snapshot.batches);
    encode_totals(&mut w, &snapshot.totals);
    w.u64(snapshot.series.len() as u64);
    for s in &snapshot.series {
        encode_series(&mut w, s, snapshot.config.compression);
    }
    w.buf
}

/// Serializes an incremental delta to the versioned binary format.
pub fn encode_delta(delta: &FleetDelta) -> Vec<u8> {
    let mut w = Writer::default();
    w.bytes(MAGIC);
    w.u16(VERSION);
    w.u8(KIND_DELTA);
    encode_config(&mut w, &delta.config);
    w.u64(delta.prev_batches);
    w.u64(delta.clock);
    w.u64(delta.batches);
    encode_totals(&mut w, &delta.totals);
    w.u64(delta.series.len() as u64);
    for s in &delta.series {
        encode_series(&mut w, s, delta.config.compression);
    }
    w.u64(delta.tombstones.len() as u64);
    for key in &delta.tombstones {
        w.string(key.as_str());
    }
    w.buf
}

/// Checks magic, version, and kind; leaves the reader after the kind byte
/// and returns the (read-compatible) version found.
fn decode_header(r: &mut Reader<'_>, want_kind: u8) -> Result<u16, CodecError> {
    if r.take(8)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u16()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let kind = r.u8()?;
    if kind != want_kind {
        return Err(CodecError::Invalid("snapshot kind (full vs delta)"));
    }
    Ok(version)
}

/// Deserializes [`encode`] output (v4, or v3 for read-compat).
pub fn decode(bytes: &[u8]) -> Result<FleetSnapshot, CodecError> {
    let mut r = Reader { data: bytes, pos: 0 };
    let v = decode_header(&mut r, KIND_FULL)?;
    let config = decode_config(&mut r, v)?;
    let clock = r.u64()?;
    let batches = r.u64()?;
    let totals = decode_totals(&mut r, v)?;
    let n = r.u64()? as usize;
    let mut series = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        series.push(decode_series(&mut r, v)?);
    }
    if r.pos != r.data.len() {
        return Err(CodecError::Invalid("trailing bytes after snapshot"));
    }
    Ok(FleetSnapshot { config, clock, batches, totals, series })
}

/// Deserializes [`encode_delta`] output (v4, or v3 for read-compat).
pub fn decode_delta(bytes: &[u8]) -> Result<FleetDelta, CodecError> {
    let mut r = Reader { data: bytes, pos: 0 };
    let v = decode_header(&mut r, KIND_DELTA)?;
    let config = decode_config(&mut r, v)?;
    let prev_batches = r.u64()?;
    let clock = r.u64()?;
    let batches = r.u64()?;
    let totals = decode_totals(&mut r, v)?;
    let n = r.u64()? as usize;
    let mut series = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        series.push(decode_series(&mut r, v)?);
    }
    let n_dead = r.u64()? as usize;
    let mut tombstones = Vec::with_capacity(n_dead.min(1 << 20));
    for _ in 0..n_dead {
        tombstones.push(SeriesKey::new(r.string()?));
    }
    if r.pos != r.data.len() {
        return Err(CodecError::Invalid("trailing bytes after delta"));
    }
    Ok(FleetDelta { config, prev_batches, clock, batches, totals, series, tombstones })
}

/// Serializes one series for the cold tier: `u16` codec version, then the
/// standard series encoding — always in the exact `f64` layout, because a
/// rehydrated series must continue **bit-identically** regardless of the
/// engine's [`StateCompression`] selection.
pub(crate) fn encode_series_blob(s: &SeriesSnapshot) -> Vec<u8> {
    let mut w = Writer::default();
    w.u16(VERSION);
    encode_series(&mut w, s, StateCompression::Exact);
    w.buf
}

/// Deserializes [`encode_series_blob`] output (any read-compatible
/// version, so a cold store written by an older build stays readable).
pub(crate) fn decode_series_blob(bytes: &[u8]) -> Result<SeriesSnapshot, CodecError> {
    let mut r = Reader { data: bytes, pos: 0 };
    let version = r.u16()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let s = decode_series(&mut r, version)?;
    if r.pos != r.data.len() {
        return Err(CodecError::Invalid("trailing bytes after series blob"));
    }
    Ok(s)
}

/// Reads just the chain header of a delta image — `(prev_batches,
/// batches)` — without decoding the series body. WAL-segment compaction
/// uses this to decide which on-disk deltas keep a recovery path alive
/// for each retained base snapshot.
pub(crate) fn decode_delta_chain(bytes: &[u8]) -> Result<(u64, u64), CodecError> {
    let mut r = Reader { data: bytes, pos: 0 };
    let v = decode_header(&mut r, KIND_DELTA)?;
    let _config = decode_config(&mut r, v)?;
    let prev_batches = r.u64()?;
    let _clock = r.u64()?;
    let batches = r.u64()?;
    Ok((prev_batches, batches))
}

fn encode_totals(w: &mut Writer, t: &CarriedTotals) {
    w.u64(t.evicted);
    w.u64(t.admitted);
    w.u64(t.points);
    w.u64(t.anomalies);
    w.u64(t.wal_retries);
    w.u64(t.shard_restarts);
    w.u64(t.undurable_batches);
}

fn decode_totals(r: &mut Reader<'_>, version: u16) -> Result<CarriedTotals, CodecError> {
    Ok(CarriedTotals {
        evicted: r.u64()?,
        admitted: r.u64()?,
        points: r.u64()?,
        anomalies: r.u64()?,
        // pre-v8 writers had no health counters: they start at 0
        wal_retries: if version >= 8 { r.u64()? } else { 0 },
        shard_restarts: if version >= 8 { r.u64()? } else { 0 },
        undurable_batches: if version >= 8 { r.u64()? } else { 0 },
    })
}

fn encode_config(w: &mut Writer, c: &FleetConfig) {
    w.u32(c.shards as u32);
    w.u32(c.init_cycles as u32);
    match &c.period {
        PeriodPolicy::Fixed(t) => {
            w.u8(0);
            w.u32(*t as u32);
        }
        PeriodPolicy::Detect { min_period, max_period, min_acf, fallback } => {
            w.u8(1);
            w.u32(*min_period as u32);
            w.u32(*max_period as u32);
            w.f64(*min_acf);
            w.opt_u32(fallback.map(|v| v as u32));
        }
    }
    w.opt_u32(c.max_warmup.map(|v| v as u32));
    w.f64(c.nsigma);
    w.opt_u64(c.ttl);
    w.opt_u64(c.max_clock_step);
    w.opt_u64(c.queue_capacity.map(|v| v as u64));
    w.u8(match c.queue_policy {
        QueuePolicy::Block => 0,
        QueuePolicy::Reject => 1,
    });
    encode_detector_config(w, &c.detector);
    encode_score_config(w, &c.score);
    encode_forecast_options(w, &c.forecast);
    encode_backend_select(w, &c.backend);
    w.u8(match c.compression {
        StateCompression::Exact => 0,
        StateCompression::Compact => 1,
    });
    w.opt_u64(c.spill_after);
}

fn decode_config(r: &mut Reader<'_>, version: u16) -> Result<FleetConfig, CodecError> {
    let shards = r.u32()? as usize;
    let init_cycles = r.u32()? as usize;
    let period = match r.u8()? {
        0 => PeriodPolicy::Fixed(r.u32()? as usize),
        1 => PeriodPolicy::Detect {
            min_period: r.u32()? as usize,
            max_period: r.u32()? as usize,
            min_acf: r.f64()?,
            fallback: r.opt_u32()?.map(|v| v as usize),
        },
        _ => return Err(CodecError::Invalid("period policy tag")),
    };
    let max_warmup = r.opt_u32()?.map(|v| v as usize);
    let nsigma = r.f64()?;
    let ttl = r.opt_u64()?;
    let max_clock_step = r.opt_u64()?;
    let queue_capacity = r.opt_u64()?.map(|v| v as usize);
    let queue_policy = match r.u8()? {
        0 => QueuePolicy::Block,
        1 => QueuePolicy::Reject,
        _ => return Err(CodecError::Invalid("queue policy tag")),
    };
    let detector = decode_detector_config(r, version)?;
    // a v3/v4 writer scored with the plain instantaneous z-score
    let score = if version >= 5 { decode_score_config(r)? } else { ScoreConfig::off() };
    // and no pre-v6 writer forecasted
    let forecast =
        if version >= 6 { decode_forecast_options(r)? } else { ForecastOptions::default() };
    // nor did any pre-v7 writer run a backend beyond the fused scorer
    let backend = if version >= 7 { decode_backend_select(r)? } else { BackendSelect::Fused };
    // and no pre-v9 writer compressed state or spilled to a cold tier
    let compression = if version >= 9 {
        match r.u8()? {
            0 => StateCompression::Exact,
            1 => StateCompression::Compact,
            _ => return Err(CodecError::Invalid("state compression tag")),
        }
    } else {
        StateCompression::Exact
    };
    let spill_after = if version >= 9 { r.opt_u64()? } else { None };
    // same smuggling stance as every other config field: no writer can
    // produce the degenerate thresholds the API boundary rejects
    if spill_after == Some(0) {
        return Err(CodecError::Invalid("spill_after"));
    }
    if let (Some(spill), Some(t)) = (spill_after, ttl) {
        if spill >= t {
            return Err(CodecError::Invalid("spill_after >= ttl"));
        }
    }
    Ok(FleetConfig {
        shards,
        init_cycles,
        period,
        max_warmup,
        nsigma,
        ttl,
        max_clock_step,
        queue_capacity,
        queue_policy,
        detector,
        score,
        forecast,
        backend,
        compression,
        spill_after,
    })
}

/// v7: `u8` variant tag, then the variant's options.
fn encode_backend_select(w: &mut Writer, b: &BackendSelect) {
    match b {
        BackendSelect::Fused => w.u8(0),
        BackendSelect::Damp(d) => {
            w.u8(1);
            encode_damp_options(w, d);
        }
        BackendSelect::TrendCusum(s) => {
            w.u8(2);
            encode_score_config(w, s);
        }
        BackendSelect::Ensemble(e) => {
            w.u8(3);
            encode_damp_options(w, &e.damp);
            encode_score_config(w, &e.trend);
            encode_ensemble_fusion(w, e.fusion);
            for &wt in &e.weights {
                w.f64(wt);
            }
        }
    }
}

fn decode_backend_select(r: &mut Reader<'_>) -> Result<BackendSelect, CodecError> {
    let select = match r.u8()? {
        0 => BackendSelect::Fused,
        1 => BackendSelect::Damp(decode_damp_options(r)?),
        2 => BackendSelect::TrendCusum(decode_score_config(r)?),
        3 => {
            let damp = decode_damp_options(r)?;
            let trend = decode_score_config(r)?;
            let fusion = decode_ensemble_fusion(r)?;
            let weights = [r.f64()?, r.f64()?, r.f64()?];
            BackendSelect::Ensemble(EnsembleOptions { damp, trend, fusion, weights })
        }
        _ => return Err(CodecError::Invalid("backend select tag")),
    };
    // same smuggling stance as every other config: a crafted image must
    // not restore a selection the API boundary rejects (a DAMP window too
    // small for its subsequence, all-zero ensemble weights, ...)
    if select.validate().is_err() {
        return Err(CodecError::Invalid("backend selection"));
    }
    Ok(select)
}

fn encode_damp_options(w: &mut Writer, d: &DampOptions) {
    w.u32(d.window);
    w.u32(d.subseq);
}

fn decode_damp_options(r: &mut Reader<'_>) -> Result<DampOptions, CodecError> {
    Ok(DampOptions { window: r.u32()?, subseq: r.u32()? })
}

fn encode_ensemble_fusion(w: &mut Writer, f: EnsembleFusion) {
    w.u8(match f {
        EnsembleFusion::Max => 0,
        EnsembleFusion::WeightedRank => 1,
    });
}

fn decode_ensemble_fusion(r: &mut Reader<'_>) -> Result<EnsembleFusion, CodecError> {
    Ok(match r.u8()? {
        0 => EnsembleFusion::Max,
        1 => EnsembleFusion::WeightedRank,
        _ => return Err(CodecError::Invalid("ensemble fusion tag")),
    })
}

/// v5: `u8` fusion tag, then `f64` k / h / hold-decay.
fn encode_score_config(w: &mut Writer, s: &ScoreConfig) {
    w.u8(match s.fusion {
        Fusion::Off => 0,
        Fusion::Cusum => 1,
        Fusion::Max => 2,
    });
    w.f64(s.cusum_k);
    w.f64(s.cusum_h);
    w.f64(s.hold_decay);
}

fn decode_score_config(r: &mut Reader<'_>) -> Result<ScoreConfig, CodecError> {
    let fusion = match r.u8()? {
        0 => Fusion::Off,
        1 => Fusion::Cusum,
        2 => Fusion::Max,
        _ => return Err(CodecError::Invalid("fusion tag")),
    };
    let config =
        ScoreConfig { cusum_k: r.f64()?, cusum_h: r.f64()?, hold_decay: r.f64()?, fusion };
    // a corrupted or externally-produced image must not smuggle in
    // degenerate values the API boundary rejects (non-finite k/h,
    // hold_decay >= 1, ...)
    if config.validate().is_err() {
        return Err(CodecError::Invalid("score config"));
    }
    Ok(config)
}

/// v6: `u8` enabled, `f64` damping, `u32` error window, `u8` fusion flag,
/// `f64` sMAPE alarm bar.
fn encode_forecast_options(w: &mut Writer, f: &ForecastOptions) {
    w.u8(f.enabled as u8);
    w.f64(f.damping);
    w.u32(f.error_window);
    w.u8(f.error_fusion as u8);
    w.f64(f.smape_alarm);
}

fn decode_forecast_options(r: &mut Reader<'_>) -> Result<ForecastOptions, CodecError> {
    let enabled = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(CodecError::Invalid("forecast enabled flag")),
    };
    let damping = r.f64()?;
    let error_window = r.u32()?;
    let error_fusion = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(CodecError::Invalid("forecast fusion flag")),
    };
    let options =
        ForecastOptions { enabled, damping, error_window, error_fusion, smape_alarm: r.f64()? };
    // same smuggling stance as the score config: a crafted image must not
    // restore values the API boundary rejects (φ outside [0, 1], a
    // zero-capacity error window, a non-positive alarm bar)
    if options.validate().is_err() {
        return Err(CodecError::Invalid("forecast options"));
    }
    Ok(options)
}

/// v6: the forecast-head state of a live series — its options, the
/// pending one-step prediction awaiting its truth, and the rolling error
/// tracker rings.
fn encode_forecast_state(w: &mut Writer, f: &ForecastSnapshot) {
    encode_forecast_options(w, &f.options);
    w.f64(f.pending);
    w.u8(f.has_pending as u8);
    w.vec_f64(&f.tracker.abs);
    w.vec_f64(&f.tracker.sm);
    w.u32(f.tracker.head);
    w.u32(f.tracker.len);
    w.f64(f.tracker.sum_abs);
    w.f64(f.tracker.sum_sm);
}

fn decode_forecast_state(r: &mut Reader<'_>) -> Result<ForecastSnapshot, CodecError> {
    let options = decode_forecast_options(r)?;
    let pending = r.f64()?;
    let has_pending = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(CodecError::Invalid("forecast pending flag")),
    };
    // a NaN pending prediction would poison the tracker at the next point
    if has_pending && !pending.is_finite() {
        return Err(CodecError::Invalid("forecast pending prediction"));
    }
    let tracker = forecast::RollingErrorState {
        abs: r.vec_f64()?,
        sm: r.vec_f64()?,
        head: r.u32()?,
        len: r.u32()?,
        sum_abs: r.f64()?,
        sum_sm: r.f64()?,
    };
    // the tracker's own validation rejects ragged rings, out-of-range
    // cursors, negative error terms, and non-finite sums — a NaN sum
    // would poison every sMAPE read after restore
    if forecast::RollingError::from_state(tracker.clone()).is_err() {
        return Err(CodecError::Invalid("forecast tracker state"));
    }
    Ok(ForecastSnapshot { options, pending, has_pending, tracker })
}

/// v7: the backend state of a live series — `u8` variant tag, then the
/// variant's members.
fn encode_backend_state(w: &mut Writer, s: &BackendSnapshot) {
    match s {
        BackendSnapshot::Damp(d) => {
            w.u8(0);
            encode_damp_backend_state(w, d);
        }
        BackendSnapshot::TrendCusum(t) => {
            w.u8(1);
            encode_trend_cusum_state(w, t);
        }
        BackendSnapshot::Ensemble { damp, trend, fusion, weights } => {
            w.u8(2);
            encode_damp_backend_state(w, damp);
            encode_trend_cusum_state(w, trend);
            encode_ensemble_fusion(w, *fusion);
            for &wt in weights {
                w.f64(wt);
            }
        }
    }
}

fn decode_backend_state(
    r: &mut Reader<'_>,
    version: u16,
) -> Result<BackendSnapshot, CodecError> {
    let snap = match r.u8()? {
        0 => BackendSnapshot::Damp(decode_damp_backend_state(r)?),
        1 => BackendSnapshot::TrendCusum(decode_trend_cusum_state(r, version)?),
        2 => {
            let damp = decode_damp_backend_state(r)?;
            let trend = decode_trend_cusum_state(r, version)?;
            let fusion = decode_ensemble_fusion(r)?;
            let weights = [r.f64()?, r.f64()?, r.f64()?];
            BackendSnapshot::Ensemble { damp, trend, fusion, weights }
        }
        _ => return Err(CodecError::Invalid("backend state tag")),
    };
    // the restore path's own validation is the single home of the range
    // checks (finite retained values, bsf >= 0, weights, ...) — running
    // it here keeps a crafted image from smuggling state the API
    // boundary rejects, without duplicating the rules
    if SeriesBackend::from_snapshot(snap.clone()).is_err() {
        return Err(CodecError::Invalid("backend state"));
    }
    Ok(snap)
}

fn encode_damp_backend_state(w: &mut Writer, s: &DampBackendState) {
    w.u64(s.damp.window as u64);
    w.u64(s.damp.m as u64);
    w.vec_f64(&s.damp.buf);
    w.f64(s.damp.bsf);
    encode_nsigma(w, &s.norm);
    w.u32(s.warmup_left);
}

fn decode_damp_backend_state(r: &mut Reader<'_>) -> Result<DampBackendState, CodecError> {
    let damp = anomaly::StreamingDampState {
        window: r.u64()? as usize,
        m: r.u64()? as usize,
        buf: r.vec_f64()?,
        bsf: r.f64()?,
    };
    Ok(DampBackendState { damp, norm: decode_nsigma(r)?, warmup_left: r.u32()? })
}

fn encode_trend_cusum_state(w: &mut Writer, s: &oneshotstl::TrendCusumState) {
    encode_scorer(w, &s.scorer);
    w.f64(s.prev);
    w.u8(s.has_prev as u8);
    w.u32(s.warmup_left);
}

fn decode_trend_cusum_state(
    r: &mut Reader<'_>,
    version: u16,
) -> Result<oneshotstl::TrendCusumState, CodecError> {
    let scorer = decode_scorer(r, version)?;
    let prev = r.f64()?;
    let has_prev = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(CodecError::Invalid("trend CUSUM prev flag")),
    };
    Ok(oneshotstl::TrendCusumState { scorer, prev, has_prev, warmup_left: r.u32()? })
}

fn encode_detector_config(w: &mut Writer, c: &OneShotStlConfig) {
    w.f64(c.lambdas.lambda1);
    w.f64(c.lambdas.lambda2);
    w.f64(c.lambdas.anchor);
    w.u32(c.iters as u32);
    w.u32(c.shift_window as u32);
    w.f64(c.nsigma);
    w.u8(match c.shift_policy {
        ShiftPolicy::Cumulative => 0,
        ShiftPolicy::Transient => 1,
    });
    w.f64(c.shift_accept_ratio);
    w.u8(match c.init {
        InitMethod::Stl => 0,
        InitMethod::JointStl => 1,
    });
    w.f64(c.eps);
    encode_shift_search(w, &c.shift_search);
}

/// v4: `u8` tag (0 = Off, 1 = TopK) then the `u32` k for TopK.
fn encode_shift_search(w: &mut Writer, s: &ShiftSearchConfig) {
    match s.prune {
        ShiftPrune::Off => w.u8(0),
        ShiftPrune::TopK(k) => {
            w.u8(1);
            w.u32(k as u32);
        }
    }
}

fn decode_shift_search(r: &mut Reader<'_>) -> Result<ShiftSearchConfig, CodecError> {
    Ok(match r.u8()? {
        0 => ShiftSearchConfig::exhaustive(),
        1 => {
            let k = r.u32()? as usize;
            // no fleet writer can produce TopK(0) (both the engine config
            // and per-series overrides reject it), so a decoded one is a
            // crafted/corrupted image smuggling in the degenerate
            // baseline-only search — refuse it on every path, including
            // live series' embedded detector configs
            if k == 0 {
                return Err(CodecError::Invalid("shift search TopK(0)"));
            }
            ShiftSearchConfig::top_k(k)
        }
        _ => return Err(CodecError::Invalid("shift search prune tag")),
    })
}

fn decode_detector_config(
    r: &mut Reader<'_>,
    version: u16,
) -> Result<OneShotStlConfig, CodecError> {
    let lambdas = Lambdas { lambda1: r.f64()?, lambda2: r.f64()?, anchor: r.f64()? };
    let iters = r.u32()? as usize;
    let shift_window = r.u32()? as usize;
    let nsigma = r.f64()?;
    let shift_policy = match r.u8()? {
        0 => ShiftPolicy::Cumulative,
        1 => ShiftPolicy::Transient,
        _ => return Err(CodecError::Invalid("shift policy tag")),
    };
    let shift_accept_ratio = r.f64()?;
    let init = match r.u8()? {
        0 => InitMethod::Stl,
        1 => InitMethod::JointStl,
        _ => return Err(CodecError::Invalid("init method tag")),
    };
    let eps = r.f64()?;
    // a v3 writer ran the exhaustive search; restoring it as such keeps
    // the restored stream bit-identical to the writer's continuation
    let shift_search =
        if version >= 4 { decode_shift_search(r)? } else { ShiftSearchConfig::exhaustive() };
    Ok(OneShotStlConfig {
        lambdas,
        iters,
        shift_window,
        nsigma,
        shift_policy,
        shift_search,
        shift_accept_ratio,
        init,
        eps,
    })
}

/// v4: pending per-series admission overrides of a warming series.
/// v5 appends the optional residual-score override; v6 the optional
/// forecast override; v7 the optional backend override.
pub(crate) fn encode_admit_options(w: &mut Writer, o: &AdmitOptions) {
    w.opt_f64(o.lambda);
    w.opt_f64(o.nsigma);
    w.opt_u32(o.period.map(|v| v as u32));
    match &o.shift_search {
        None => w.u8(0),
        Some(ss) => {
            w.u8(1);
            encode_shift_search(w, ss);
        }
    }
    match &o.score {
        None => w.u8(0),
        Some(sc) => {
            w.u8(1);
            encode_score_config(w, sc);
        }
    }
    match &o.forecast {
        None => w.u8(0),
        Some(f) => {
            w.u8(1);
            encode_forecast_options(w, f);
        }
    }
    match &o.backend {
        None => w.u8(0),
        Some(b) => {
            w.u8(1);
            encode_backend_select(w, b);
        }
    }
}

pub(crate) fn decode_admit_options(
    r: &mut Reader<'_>,
    version: u16,
) -> Result<AdmitOptions, CodecError> {
    let lambda = r.opt_f64()?;
    let nsigma = r.opt_f64()?;
    let period = r.opt_u32()?.map(|v| v as usize);
    let shift_search = match r.u8()? {
        0 => None,
        1 => Some(decode_shift_search(r)?),
        _ => return Err(CodecError::Invalid("option tag")),
    };
    let score = if version >= 5 {
        match r.u8()? {
            0 => None,
            1 => Some(decode_score_config(r)?),
            _ => return Err(CodecError::Invalid("option tag")),
        }
    } else {
        None
    };
    let forecast = if version >= 6 {
        match r.u8()? {
            0 => None,
            1 => Some(decode_forecast_options(r)?),
            _ => return Err(CodecError::Invalid("option tag")),
        }
    } else {
        None
    };
    let backend = if version >= 7 {
        match r.u8()? {
            0 => None,
            1 => Some(decode_backend_select(r)?),
            _ => return Err(CodecError::Invalid("option tag")),
        }
    } else {
        None
    };
    let opts = AdmitOptions { lambda, nsigma, period, shift_search, score, forecast, backend };
    // a corrupted or externally-produced image must not smuggle in the
    // degenerate values the API boundary rejects (TopK(0), non-finite or
    // non-positive λ/nsigma, period < 2)
    if opts.validate().is_err() {
        return Err(CodecError::Invalid("admit options"));
    }
    Ok(opts)
}

fn encode_series(w: &mut Writer, s: &SeriesSnapshot, mode: StateCompression) {
    w.string(s.key.as_str());
    w.u64(s.last_seen);
    match &s.phase {
        PhaseSnapshot::Warming { values, period, last_attempt, overrides } => {
            w.u8(0);
            w.vec_f64(values);
            w.opt_u32(period.map(|v| v as u32));
            w.u64(*last_attempt as u64);
            encode_admit_options(w, overrides);
        }
        PhaseSnapshot::Live { decomposer, scorer, forecast, backend } => {
            w.u8(1);
            encode_decomposer(w, decomposer, mode);
            encode_scorer(w, scorer);
            match forecast {
                None => w.u8(0),
                Some(f) => {
                    w.u8(1);
                    encode_forecast_state(w, f);
                }
            }
            match backend {
                None => w.u8(0),
                Some(b) => {
                    w.u8(1);
                    encode_backend_state(w, b);
                }
            }
        }
        PhaseSnapshot::Rejected => w.u8(2),
        PhaseSnapshot::Quarantined { cause, dropped } => {
            w.u8(3);
            w.u8(match cause {
                QuarantineCause::NonFinite => 0,
                QuarantineCause::Panic => 1,
            });
            w.u64(*dropped);
        }
    }
}

fn decode_series(r: &mut Reader<'_>, version: u16) -> Result<SeriesSnapshot, CodecError> {
    let key = SeriesKey::new(r.string()?);
    let last_seen = r.u64()?;
    let phase = match r.u8()? {
        0 => PhaseSnapshot::Warming {
            values: r.vec_f64()?,
            period: r.opt_u32()?.map(|v| v as usize),
            last_attempt: r.u64()? as usize,
            overrides: if version >= 4 {
                decode_admit_options(r, version)?
            } else {
                AdmitOptions::default()
            },
        },
        1 => PhaseSnapshot::Live {
            decomposer: decode_decomposer(r, version)?,
            scorer: decode_scorer(r, version)?,
            // no pre-v6 writer forecasted, so pre-v6 live series carry no
            // head — scoring continues bit-identically with forecasts off
            forecast: if version >= 6 {
                match r.u8()? {
                    0 => None,
                    1 => Some(decode_forecast_state(r)?),
                    _ => return Err(CodecError::Invalid("forecast state tag")),
                }
            } else {
                None
            },
            // no pre-v7 writer ran a backend, so pre-v7 live series carry
            // none — scoring continues bit-identically on the fused path
            backend: if version >= 7 {
                match r.u8()? {
                    0 => None,
                    1 => Some(decode_backend_state(r, version)?),
                    _ => return Err(CodecError::Invalid("backend presence tag")),
                }
            } else {
                None
            },
        },
        2 => PhaseSnapshot::Rejected,
        // no pre-v8 writer quarantined, so the tag is invalid there
        3 if version >= 8 => PhaseSnapshot::Quarantined {
            cause: match r.u8()? {
                0 => QuarantineCause::NonFinite,
                1 => QuarantineCause::Panic,
                _ => return Err(CodecError::Invalid("quarantine cause")),
            },
            dropped: r.u64()?,
        },
        _ => return Err(CodecError::Invalid("series phase tag")),
    };
    Ok(SeriesSnapshot { key, last_seen, phase })
}

fn encode_decomposer(w: &mut Writer, s: &OneShotStlState, mode: StateCompression) {
    encode_detector_config(w, &s.config);
    w.u64(s.period);
    w.u64(s.t);
    w.u64(s.m);
    w.i64(s.shift);
    packed_vec_f64(w, &s.v, mode);
    w.f64_pair(s.y_hist);
    w.f64_pair(s.u_hist);
    w.u32(s.iters.len() as u32);
    for it in &s.iters {
        encode_solver(w, &it.solver, mode);
        w.f64_pair(it.pw_hist);
        w.f64_pair(it.qw_hist);
        w.f64_pair(it.tau_hist);
    }
    encode_nsigma(w, &s.nsigma);
    w.u8(s.initialized as u8);
}

fn decode_decomposer(r: &mut Reader<'_>, version: u16) -> Result<OneShotStlState, CodecError> {
    let config = decode_detector_config(r, version)?;
    let period = r.u64()?;
    let t = r.u64()?;
    let m = r.u64()?;
    let shift = r.i64()?;
    let v = decode_packed_vec(r, version)?;
    let y_hist = r.f64_pair()?;
    let u_hist = r.f64_pair()?;
    let n_iters = r.u32()? as usize;
    let mut iters = Vec::with_capacity(n_iters.min(1 << 10));
    for _ in 0..n_iters {
        let solver = decode_solver(r, version)?;
        iters.push(IterSnapshot {
            solver,
            pw_hist: r.f64_pair()?,
            qw_hist: r.f64_pair()?,
            tau_hist: r.f64_pair()?,
        });
    }
    let nsigma = decode_nsigma(r)?;
    let initialized = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(CodecError::Invalid("initialized flag")),
    };
    Ok(OneShotStlState {
        config,
        period,
        t,
        m,
        shift,
        v,
        y_hist,
        u_hist,
        iters,
        nsigma,
        initialized,
    })
}

fn encode_solver(w: &mut Writer, s: &SolverState, mode: StateCompression) {
    match s {
        SolverState::Warmup { y, u, pw, qw } => {
            w.u8(0);
            packed_vec_f64(w, y, mode);
            packed_vec_f64(w, u, mode);
            packed_vec_f64(w, pw, mode);
            packed_vec_f64(w, qw, mode);
        }
        SolverState::Steady { m, lo, dd, zo } => {
            w.u8(1);
            w.u64(*m);
            packed_vec_f64(w, lo, mode);
            packed_vec_f64(w, dd, mode);
            packed_vec_f64(w, zo, mode);
        }
    }
}

fn decode_solver(r: &mut Reader<'_>, version: u16) -> Result<SolverState, CodecError> {
    match r.u8()? {
        0 => Ok(SolverState::Warmup {
            y: decode_packed_vec(r, version)?,
            u: decode_packed_vec(r, version)?,
            pw: decode_packed_vec(r, version)?,
            qw: decode_packed_vec(r, version)?,
        }),
        1 => Ok(SolverState::Steady {
            m: r.u64()?,
            lo: decode_packed_vec(r, version)?,
            dd: decode_packed_vec(r, version)?,
            zo: decode_packed_vec(r, version)?,
        }),
        _ => Err(CodecError::Invalid("solver state tag")),
    }
}

/// v9: `u8` layout tag, then the vector. Tag 0 is the exact `f64` layout
/// (`u64` length + bit-pattern elements); tag 1 is the compact form —
/// `u64` length, the first element as `f64` bits, then each later
/// element as the `f32` delta from its *reconstructed* predecessor.
/// Encoding against the reconstruction (not the original neighbor) keeps
/// the drift bounded at one `f32` rounding per element and makes the
/// encoding idempotent: re-encoding a decoded compact image reproduces
/// the exact same bytes, so repeated snapshot cycles are stable.
fn packed_vec_f64(w: &mut Writer, v: &[f64], mode: StateCompression) {
    match mode {
        StateCompression::Exact => {
            w.u8(0);
            w.vec_f64(v);
        }
        StateCompression::Compact => {
            w.u8(1);
            w.u64(v.len() as u64);
            if let Some((&first, rest)) = v.split_first() {
                w.f64(first);
                let mut prev = first;
                for &x in rest {
                    let d = (x - prev) as f32;
                    w.u32(d.to_bits());
                    prev += d as f64;
                }
            }
        }
    }
}

fn unpacked_vec_f64(r: &mut Reader<'_>) -> Result<Vec<f64>, CodecError> {
    match r.u8()? {
        0 => r.vec_f64(),
        1 => {
            let n = r.u64()? as usize;
            if n == 0 {
                return Ok(Vec::new());
            }
            // sanity-check the declared count against the bytes present
            // before allocating for it: 8 for the first, 4 per delta
            let need = 8usize
                .checked_add((n - 1).checked_mul(4).ok_or(CodecError::Truncated)?)
                .ok_or(CodecError::Truncated)?;
            if r.remaining() < need {
                return Err(CodecError::Truncated);
            }
            let mut out = Vec::with_capacity(n);
            let mut prev = r.f64()?;
            out.push(prev);
            for _ in 1..n {
                prev += f32::from_bits(r.u32()?) as f64;
                out.push(prev);
            }
            Ok(out)
        }
        _ => Err(CodecError::Invalid("packed vector tag")),
    }
}

/// Pre-v9 images carry untagged plain-`f64` vectors.
fn decode_packed_vec(r: &mut Reader<'_>, version: u16) -> Result<Vec<f64>, CodecError> {
    if version >= 9 {
        unpacked_vec_f64(r)
    } else {
        r.vec_f64()
    }
}

fn encode_nsigma(w: &mut Writer, s: &NSigmaState) {
    w.f64(s.n);
    w.u64(s.count);
    w.f64(s.sum);
    w.f64(s.sum_sq);
}

fn decode_nsigma(r: &mut Reader<'_>) -> Result<NSigmaState, CodecError> {
    Ok(NSigmaState { n: r.f64()?, count: r.u64()?, sum: r.f64()?, sum_sq: r.f64()? })
}

/// v5: the full task-level residual scorer of a live series.
fn encode_scorer(w: &mut Writer, s: &ResidualScorerState) {
    encode_score_config(w, &s.config);
    encode_nsigma(w, &s.nsigma);
    w.f64(s.s_pos);
    w.f64(s.s_neg);
    w.f64(s.hold);
}

/// v3/v4 live series stored only the NSigma statistics; wrapping them in
/// a `Fusion::Off` scorer reproduces the plain-NSigma scoring those
/// writers ran, bit-identically.
fn decode_scorer(r: &mut Reader<'_>, version: u16) -> Result<ResidualScorerState, CodecError> {
    if version >= 5 {
        let config = decode_score_config(r)?;
        let nsigma = decode_nsigma(r)?;
        let s_pos = r.f64()?;
        let s_neg = r.f64()?;
        let hold = r.f64()?;
        // mirror the config-level smuggling checks for the dynamic state:
        // a NaN accumulator would silently disable one CUSUM side forever
        // (f64::max(NaN, x) returns x), and no writer can produce values
        // outside the update loop's clamp ranges
        let bar = 2.0 * config.cusum_h;
        for s in [s_pos, s_neg] {
            if !(s.is_finite() && (0.0..=bar).contains(&s)) {
                return Err(CodecError::Invalid("scorer accumulator"));
            }
        }
        if !(hold.is_finite() && hold >= 0.0) {
            return Err(CodecError::Invalid("scorer hold"));
        }
        Ok(ResidualScorerState { config, nsigma, s_pos, s_neg, hold })
    } else {
        Ok(ResidualScorerState {
            config: ScoreConfig::off(),
            nsigma: decode_nsigma(r)?,
            s_pos: 0.0,
            s_neg: 0.0,
            hold: 0.0,
        })
    }
}

/// Little-endian byte sink. Shared with the WAL record format
/// ([`crate::wal`]), so both on-disk layouts follow one set of
/// conventions: LE integers, bit-pattern `f64`s, `u32`-length strings.
#[derive(Default)]
pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn u16(&mut self, v: u16) {
        self.bytes(&v.to_le_bytes());
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn f64_pair(&mut self, v: [f64; 2]) {
        self.f64(v[0]);
        self.f64(v[1]);
    }
    pub(crate) fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }
    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
        }
    }
    fn vec_f64(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f64(x);
        }
    }
}

/// Little-endian byte source with bounds checking (the [`Writer`]'s dual;
/// also shared with [`crate::wal`]).
pub(crate) struct Reader<'a> {
    pub(crate) data: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    /// Bytes left to read — lets a decoder sanity-check a declared element
    /// count against the space it would need before allocating for it.
    pub(crate) fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.data.len() {
            return Err(CodecError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    pub(crate) fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn f64_pair(&mut self) -> Result<[f64; 2], CodecError> {
        Ok([self.f64()?, self.f64()?])
    }
    fn opt_u32(&mut self) -> Result<Option<u32>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            _ => Err(CodecError::Invalid("option tag")),
        }
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(CodecError::Invalid("option tag")),
        }
    }
    fn opt_f64(&mut self) -> Result<Option<f64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            _ => Err(CodecError::Invalid("option tag")),
        }
    }
    pub(crate) fn string(&mut self) -> Result<&'a str, CodecError> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.take(n)?).map_err(|_| CodecError::Invalid("utf-8 string"))
    }
    fn vec_f64(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.u64()? as usize;
        let raw = self.take(n.checked_mul(8).ok_or(CodecError::Truncated)?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> FleetSnapshot {
        // a value with a messy bit pattern to catch any lossy encode
        let messy = std::f64::consts::PI * 1e-17;
        FleetSnapshot {
            config: FleetConfig {
                queue_capacity: Some(16),
                queue_policy: QueuePolicy::Reject,
                forecast: ForecastOptions {
                    enabled: true,
                    damping: 0.9,
                    error_window: 32,
                    error_fusion: true,
                    smape_alarm: 1.25,
                },
                backend: BackendSelect::Ensemble(EnsembleOptions {
                    damp: DampOptions { window: 64, subseq: 8 },
                    fusion: EnsembleFusion::WeightedRank,
                    weights: [2.0, 1.0, 0.5],
                    ..Default::default()
                }),
                ..FleetConfig::fixed_period(24)
            },
            clock: 99,
            batches: 7,
            totals: CarriedTotals {
                evicted: 1,
                admitted: 2,
                points: 300,
                anomalies: 4,
                wal_retries: 6,
                shard_restarts: 1,
                undurable_batches: 2,
            },
            series: vec![
                SeriesSnapshot {
                    key: SeriesKey::new("warm"),
                    last_seen: 42,
                    phase: PhaseSnapshot::Warming {
                        values: vec![1.0, -2.5, messy],
                        period: Some(24),
                        last_attempt: 3,
                        overrides: AdmitOptions {
                            lambda: Some(0.25),
                            nsigma: Some(4.0),
                            period: Some(24),
                            shift_search: Some(ShiftSearchConfig::top_k(7)),
                            score: Some(ScoreConfig {
                                cusum_k: 0.75,
                                cusum_h: 9.0,
                                hold_decay: 0.5,
                                fusion: Fusion::Cusum,
                            }),
                            forecast: Some(ForecastOptions {
                                enabled: true,
                                damping: 0.5,
                                error_window: 16,
                                error_fusion: false,
                                smape_alarm: 0.8,
                            }),
                            backend: Some(BackendSelect::Damp(DampOptions {
                                window: 128,
                                subseq: 0,
                            })),
                        },
                    },
                },
                SeriesSnapshot {
                    key: SeriesKey::new("dead"),
                    last_seen: 7,
                    phase: PhaseSnapshot::Rejected,
                },
            ],
        }
    }

    /// The pre-v9 byte layouts, kept verbatim for the hand-encoded
    /// version fixtures below: the v8 config ends after the backend
    /// selection (no compression/spill fields) and v8 state vectors are
    /// untagged plain `f64`s.
    fn encode_config_v8(w: &mut Writer, c: &FleetConfig) {
        w.u32(c.shards as u32);
        w.u32(c.init_cycles as u32);
        match &c.period {
            PeriodPolicy::Fixed(t) => {
                w.u8(0);
                w.u32(*t as u32);
            }
            PeriodPolicy::Detect { min_period, max_period, min_acf, fallback } => {
                w.u8(1);
                w.u32(*min_period as u32);
                w.u32(*max_period as u32);
                w.f64(*min_acf);
                w.opt_u32(fallback.map(|v| v as u32));
            }
        }
        w.opt_u32(c.max_warmup.map(|v| v as u32));
        w.f64(c.nsigma);
        w.opt_u64(c.ttl);
        w.opt_u64(c.max_clock_step);
        w.opt_u64(c.queue_capacity.map(|v| v as u64));
        w.u8(match c.queue_policy {
            QueuePolicy::Block => 0,
            QueuePolicy::Reject => 1,
        });
        encode_detector_config(w, &c.detector);
        encode_score_config(w, &c.score);
        encode_forecast_options(w, &c.forecast);
        encode_backend_select(w, &c.backend);
    }

    fn encode_solver_v8(w: &mut Writer, s: &SolverState) {
        match s {
            SolverState::Warmup { y, u, pw, qw } => {
                w.u8(0);
                w.vec_f64(y);
                w.vec_f64(u);
                w.vec_f64(pw);
                w.vec_f64(qw);
            }
            SolverState::Steady { m, lo, dd, zo } => {
                w.u8(1);
                w.u64(*m);
                w.vec_f64(lo);
                w.vec_f64(dd);
                w.vec_f64(zo);
            }
        }
    }

    fn encode_decomposer_v8(w: &mut Writer, s: &OneShotStlState) {
        encode_detector_config(w, &s.config);
        w.u64(s.period);
        w.u64(s.t);
        w.u64(s.m);
        w.i64(s.shift);
        w.vec_f64(&s.v);
        w.f64_pair(s.y_hist);
        w.f64_pair(s.u_hist);
        w.u32(s.iters.len() as u32);
        for it in &s.iters {
            encode_solver_v8(w, &it.solver);
            w.f64_pair(it.pw_hist);
            w.f64_pair(it.qw_hist);
            w.f64_pair(it.tau_hist);
        }
        encode_nsigma(w, &s.nsigma);
        w.u8(s.initialized as u8);
    }

    #[test]
    fn delta_roundtrip_and_fold_reproduce_the_full_image() {
        let base = sample_snapshot();
        // the delta updates "warm", removes "dead", and adds "new"
        let updated = SeriesSnapshot {
            key: SeriesKey::new("warm"),
            last_seen: 90,
            phase: PhaseSnapshot::Warming {
                values: vec![4.0, 5.0],
                period: Some(24),
                last_attempt: 5,
                overrides: AdmitOptions::default(),
            },
        };
        let added = SeriesSnapshot {
            key: SeriesKey::new("new"),
            last_seen: 91,
            phase: PhaseSnapshot::Rejected,
        };
        let delta = FleetDelta {
            config: base.config.clone(),
            prev_batches: base.batches,
            clock: 120,
            batches: 9,
            totals: CarriedTotals {
                evicted: 2,
                admitted: 3,
                points: 400,
                anomalies: 5,
                ..CarriedTotals::default()
            },
            series: vec![added.clone(), updated.clone()],
            tombstones: vec![SeriesKey::new("dead")],
        };
        let bytes = encode_delta(&delta);
        let back = decode_delta(&bytes).unwrap();
        assert_eq!(back, delta);
        // a delta must never decode as a full snapshot (and vice versa)
        assert!(decode(&bytes).is_err());
        assert!(decode_delta(&encode(&base)).is_err());
        // folding reproduces the expected full image
        let mut folded = base.clone();
        back.fold_into(&mut folded).unwrap();
        assert_eq!(folded.batches, 9);
        assert_eq!(folded.clock, 120);
        assert_eq!(folded.totals.points, 400);
        let keys: Vec<&str> = folded.series.iter().map(|s| s.key.as_str()).collect();
        assert_eq!(keys, ["new", "warm"], "tombstone removed, upserts sorted by key");
        assert_eq!(folded.series[1], updated);
        // a delta that does not chain onto the base is rejected
        let mut wrong = sample_snapshot();
        wrong.batches = 42;
        assert!(decode_delta(&bytes).unwrap().fold_into(&mut wrong).is_err());
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let snap = sample_snapshot();
        let bytes = encode(&snap);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.config, snap.config);
        assert_eq!(back.clock, snap.clock);
        assert_eq!(back.batches, snap.batches);
        assert_eq!(back.totals, snap.totals);
        assert_eq!(back.series.len(), 2);
        assert_eq!(back.series[0].key, snap.series[0].key);
        match (&back.series[0].phase, &snap.series[0].phase) {
            (
                PhaseSnapshot::Warming {
                    values: a,
                    period: pa,
                    last_attempt: la,
                    overrides: oa,
                },
                PhaseSnapshot::Warming {
                    values: b,
                    period: pb,
                    last_attempt: lb,
                    overrides: ob,
                },
            ) => {
                assert_eq!((pa, la), (pb, lb));
                assert_eq!(oa, ob, "per-series overrides must round-trip");
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "bit-identical floats");
                }
            }
            _ => panic!("phase mismatch"),
        }
    }

    /// A crafted v5 image smuggling degenerate scorer *dynamic state*
    /// (NaN accumulators would silently disable one CUSUM side forever:
    /// `f64::max(NaN, x)` returns `x`) must fail to decode.
    #[test]
    fn degenerate_decoded_scorer_state_is_rejected() {
        let t = 12usize;
        let y: Vec<f64> = (0..6 * t)
            .map(|i| 1.0 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let mut det = oneshotstl::StdAnomalyDetector::new(
            oneshotstl::OneShotStl::new(OneShotStlConfig::default()),
            5.0,
        );
        det.init(&y[..4 * t], t).unwrap();
        let make = |s_pos: f64, s_neg: f64, hold: f64| {
            let mut snap = sample_snapshot();
            let mut scorer = det.scorer().to_state();
            scorer.s_pos = s_pos;
            scorer.s_neg = s_neg;
            scorer.hold = hold;
            snap.series.push(SeriesSnapshot {
                key: SeriesKey::new("live"),
                last_seen: 50,
                phase: PhaseSnapshot::Live {
                    decomposer: det.decomposer.to_state(),
                    scorer,
                    forecast: None,
                    backend: None,
                },
            });
            encode(&snap)
        };
        // in-range state decodes…
        decode(&make(1.0, 0.0, 3.0)).expect("valid scorer state decodes");
        // …NaN, negative, or beyond-clamp accumulators and NaN hold do not
        for (sp, sn, hold) in [
            (f64::NAN, 0.0, 0.0),
            (0.0, f64::NAN, 0.0),
            (-1.0, 0.0, 0.0),
            (1e9, 0.0, 0.0), // > 2h for the default h
            (0.0, 0.0, f64::NAN),
            (0.0, 0.0, -2.0),
        ] {
            assert!(
                decode(&make(sp, sn, hold)).is_err(),
                "scorer state ({sp}, {sn}, {hold}) must be rejected"
            );
        }
    }

    /// A crafted image carrying override values the API boundary rejects
    /// (here: `TopK(0)`) must fail to decode, not restore a degenerate
    /// series.
    #[test]
    fn degenerate_decoded_admit_options_are_rejected() {
        let mut snap = sample_snapshot();
        let PhaseSnapshot::Warming { overrides, .. } = &mut snap.series[0].phase else {
            unreachable!("sample series 0 is warming");
        };
        overrides.shift_search = Some(ShiftSearchConfig::top_k(0));
        assert_eq!(decode(&encode(&snap)), Err(CodecError::Invalid("shift search TopK(0)")));
        // a non-finite λ is caught by the options-level validation
        let mut snap = sample_snapshot();
        let PhaseSnapshot::Warming { overrides, .. } = &mut snap.series[0].phase else {
            unreachable!("sample series 0 is warming");
        };
        overrides.lambda = Some(f64::NAN);
        assert_eq!(decode(&encode(&snap)), Err(CodecError::Invalid("admit options")));
    }

    /// Hand-encodes the v3 layout of [`sample_snapshot`] (no shift-search
    /// field in detector configs, no per-series overrides) and checks the
    /// v4 reader still restores it — with the exhaustive search the v3
    /// writer actually ran, and no overrides.
    #[test]
    fn v3_snapshots_still_decode() {
        let snap = sample_snapshot();
        let mut w = Writer::default();
        w.bytes(MAGIC);
        w.u16(3);
        w.u8(KIND_FULL);
        // config, v3 layout: everything but the detector's shift_search
        let c = &snap.config;
        w.u32(c.shards as u32);
        w.u32(c.init_cycles as u32);
        match &c.period {
            PeriodPolicy::Fixed(t) => {
                w.u8(0);
                w.u32(*t as u32);
            }
            PeriodPolicy::Detect { .. } => unreachable!("sample uses a fixed period"),
        }
        w.opt_u32(c.max_warmup.map(|v| v as u32));
        w.f64(c.nsigma);
        w.opt_u64(c.ttl);
        w.opt_u64(c.max_clock_step);
        w.opt_u64(c.queue_capacity.map(|v| v as u64));
        w.u8(1); // QueuePolicy::Reject
        let d = &c.detector;
        w.f64(d.lambdas.lambda1);
        w.f64(d.lambdas.lambda2);
        w.f64(d.lambdas.anchor);
        w.u32(d.iters as u32);
        w.u32(d.shift_window as u32);
        w.f64(d.nsigma);
        w.u8(0); // ShiftPolicy::Cumulative
        w.f64(d.shift_accept_ratio);
        w.u8(0); // InitMethod::Stl
        w.f64(d.eps);
        w.u64(snap.clock);
        w.u64(snap.batches);
        w.u64(snap.totals.evicted);
        w.u64(snap.totals.admitted);
        w.u64(snap.totals.points);
        w.u64(snap.totals.anomalies);
        // series, v3 layout: warming has no overrides
        w.u64(2);
        let PhaseSnapshot::Warming { values, period, last_attempt, .. } = &snap.series[0].phase
        else {
            unreachable!("sample series 0 is warming");
        };
        w.string("warm");
        w.u64(snap.series[0].last_seen);
        w.u8(0);
        w.vec_f64(values);
        w.opt_u32(period.map(|v| v as u32));
        w.u64(*last_attempt as u64);
        w.string("dead");
        w.u64(snap.series[1].last_seen);
        w.u8(2);
        let back = decode(&w.buf).expect("v3 must stay readable");
        assert_eq!(back.config.detector.shift_search, ShiftSearchConfig::exhaustive());
        assert_eq!(back.config.score, ScoreConfig::off(), "v3 writers scored z-only");
        match &back.series[0].phase {
            PhaseSnapshot::Warming { overrides, values: v, period: p, .. } => {
                assert!(overrides.is_default(), "v3 series carry no overrides");
                assert_eq!(v.len(), values.len());
                assert_eq!(p, period);
            }
            _ => panic!("phase mismatch"),
        }
        assert_eq!(back.clock, snap.clock);
        assert_eq!(back.batches, snap.batches);
        // ...and a v3 image re-encodes as v9 (upgrade-on-rewrite)
        let re = encode(&back);
        assert_eq!(re[8], 9, "re-encoded version");
        decode(&re).expect("upgraded image decodes");
    }

    /// Hand-encodes the v4 layout (shift-search in detector configs and
    /// per-series overrides, but **no** score configs and plain NSigma
    /// stats for live series) and checks the v5 reader restores it: the
    /// engine config and every live series get `Fusion::Off` — the plain
    /// z-scoring every v4 writer actually ran — so a restored v4 stream
    /// continues bit-identically.
    #[test]
    fn v4_snapshots_still_decode() {
        // a live series with real (initialized) decomposer + NSigma state
        let t = 12usize;
        let y: Vec<f64> = (0..8 * t)
            .map(|i| 1.5 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let mut det = oneshotstl::StdAnomalyDetector::with_score(
            oneshotstl::OneShotStl::new(OneShotStlConfig::default()),
            5.0,
            ScoreConfig::off(),
        );
        det.init(&y[..4 * t], t).unwrap();
        for &v in &y[4 * t..] {
            det.update(v);
        }
        let live_dec = det.decomposer.to_state();
        let live_ns = det.scorer().to_state().nsigma;

        let config = FleetConfig {
            score: ScoreConfig::off(), // what a v4 writer effectively ran
            ..FleetConfig::fixed_period(t)
        };
        let warm_overrides = AdmitOptions {
            lambda: Some(2.0),
            nsigma: None,
            period: Some(t),
            shift_search: Some(ShiftSearchConfig::top_k(3)),
            score: None,    // v4 has no score override
            forecast: None, // nor a forecast one
            backend: None,  // nor a backend one
        };

        let mut w = Writer::default();
        w.bytes(MAGIC);
        w.u16(4);
        w.u8(KIND_FULL);
        // config, v4 layout: detector config ends after shift_search (no
        // engine score config)
        let c = &config;
        w.u32(c.shards as u32);
        w.u32(c.init_cycles as u32);
        match &c.period {
            PeriodPolicy::Fixed(p) => {
                w.u8(0);
                w.u32(*p as u32);
            }
            PeriodPolicy::Detect { .. } => unreachable!("fixture uses a fixed period"),
        }
        w.opt_u32(c.max_warmup.map(|v| v as u32));
        w.f64(c.nsigma);
        w.opt_u64(c.ttl);
        w.opt_u64(c.max_clock_step);
        w.opt_u64(c.queue_capacity.map(|v| v as u64));
        w.u8(0); // QueuePolicy::Block
        encode_detector_config(&mut w, &c.detector);
        w.u64(7); // clock
        w.u64(3); // batches
        w.u64(0); // totals
        w.u64(1);
        w.u64(200);
        w.u64(2);
        w.u64(2); // series count
                  // series 0: warming with v4 overrides (no score field)
        w.string("warm");
        w.u64(5);
        w.u8(0);
        w.vec_f64(&[1.0, 2.0, 3.0]);
        w.opt_u32(Some(t as u32));
        w.u64(3);
        w.opt_f64(warm_overrides.lambda);
        w.opt_f64(warm_overrides.nsigma);
        w.opt_u32(warm_overrides.period.map(|v| v as u32));
        w.u8(1);
        encode_shift_search(&mut w, &warm_overrides.shift_search.unwrap());
        // series 1: live with v4 layout (decomposer + plain NSigma stats)
        w.string("live");
        w.u64(7);
        w.u8(1);
        encode_decomposer_v8(&mut w, &live_dec);
        encode_nsigma(&mut w, &live_ns);

        let back = decode(&w.buf).expect("v4 must stay readable");
        assert_eq!(back.config, config);
        assert_eq!(back.clock, 7);
        match &back.series[0].phase {
            PhaseSnapshot::Warming { overrides, .. } => {
                assert_eq!(overrides, &warm_overrides, "v4 overrides decode, score None");
            }
            _ => panic!("series 0 must be warming"),
        }
        match &back.series[1].phase {
            PhaseSnapshot::Live { decomposer, scorer, forecast, backend } => {
                assert!(forecast.is_none(), "v4 live series carry no forecast head");
                assert!(backend.is_none(), "v4 live series carry no backend state");
                assert_eq!(decomposer, &live_dec, "decomposer state bit-identical");
                assert_eq!(
                    scorer,
                    &ResidualScorerState {
                        config: ScoreConfig::off(),
                        nsigma: live_ns.clone(),
                        s_pos: 0.0,
                        s_neg: 0.0,
                        hold: 0.0,
                    },
                    "v4 NSigma stats decode as a Fusion::Off scorer"
                );
            }
            _ => panic!("series 1 must be live"),
        }
        // the restored detector continues bit-identically to the v4
        // writer's uninterrupted continuation (plain NSigma scoring)
        let PhaseSnapshot::Live { decomposer, scorer, .. } = back.series[1].phase.clone()
        else {
            unreachable!();
        };
        let mut restored = oneshotstl::StdAnomalyDetector::from_parts(
            oneshotstl::OneShotStl::from_state(decomposer).unwrap(),
            oneshotstl::ResidualScorer::from_state(scorer),
        );
        for i in 0..3 * t {
            let x = 1.5
                + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                + if i == t { 4.0 } else { 0.0 };
            let (pa, va) = det.update_scored(x);
            let (pb, vb) = restored.update_scored(x);
            assert_eq!(pa.residual.to_bits(), pb.residual.to_bits());
            assert_eq!(va.score.to_bits(), vb.score.to_bits());
            assert_eq!(va.is_anomaly, vb.is_anomaly);
        }
        // ...and a v4 image re-encodes as v9 (upgrade-on-rewrite)
        let re = encode(&back);
        assert_eq!(re[8], 9, "re-encoded version");
        assert_eq!(decode(&re).unwrap(), back);
    }

    /// Hand-encodes the v5 layout (score configs and full scorer states,
    /// but **no** forecast fields anywhere) and checks the v6 reader
    /// restores it: forecasting comes back disabled — what every v5
    /// writer actually ran — no live series carries a head, and the
    /// restored detector stream continues bit-identically.
    #[test]
    fn v5_snapshots_still_decode() {
        let t = 12usize;
        let y: Vec<f64> = (0..8 * t)
            .map(|i| 1.5 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let score = ScoreConfig {
            cusum_k: 0.5,
            cusum_h: 6.0,
            hold_decay: 0.8,
            ..ScoreConfig::default()
        };
        let mut det = oneshotstl::StdAnomalyDetector::with_score(
            oneshotstl::OneShotStl::new(OneShotStlConfig::default()),
            5.0,
            score,
        );
        det.init(&y[..4 * t], t).unwrap();
        for &v in &y[4 * t..] {
            det.update_scored(v);
        }
        let live_dec = det.decomposer.to_state();
        let live_scorer = det.scorer().to_state();

        let config = FleetConfig { score, ..FleetConfig::fixed_period(t) };
        let warm_overrides = AdmitOptions {
            lambda: Some(2.0),
            nsigma: Some(4.0),
            period: Some(t),
            shift_search: Some(ShiftSearchConfig::top_k(3)),
            score: Some(score),
            forecast: None, // v5 has no forecast override
            backend: None,  // nor a backend one
        };

        let mut w = Writer::default();
        w.bytes(MAGIC);
        w.u16(5);
        w.u8(KIND_FULL);
        // config, v5 layout: ends after the score config (no forecast)
        let c = &config;
        w.u32(c.shards as u32);
        w.u32(c.init_cycles as u32);
        match &c.period {
            PeriodPolicy::Fixed(p) => {
                w.u8(0);
                w.u32(*p as u32);
            }
            PeriodPolicy::Detect { .. } => unreachable!("fixture uses a fixed period"),
        }
        w.opt_u32(c.max_warmup.map(|v| v as u32));
        w.f64(c.nsigma);
        w.opt_u64(c.ttl);
        w.opt_u64(c.max_clock_step);
        w.opt_u64(c.queue_capacity.map(|v| v as u64));
        w.u8(0); // QueuePolicy::Block
        encode_detector_config(&mut w, &c.detector);
        encode_score_config(&mut w, &c.score);
        w.u64(7); // clock
        w.u64(3); // batches
        w.u64(0); // totals
        w.u64(1);
        w.u64(200);
        w.u64(2);
        w.u64(2); // series count
                  // series 0: warming with v5 overrides (no forecast tag)
        w.string("warm");
        w.u64(5);
        w.u8(0);
        w.vec_f64(&[1.0, 2.0, 3.0]);
        w.opt_u32(Some(t as u32));
        w.u64(3);
        w.opt_f64(warm_overrides.lambda);
        w.opt_f64(warm_overrides.nsigma);
        w.opt_u32(warm_overrides.period.map(|v| v as u32));
        w.u8(1);
        encode_shift_search(&mut w, warm_overrides.shift_search.as_ref().unwrap());
        w.u8(1);
        encode_score_config(&mut w, warm_overrides.score.as_ref().unwrap());
        // series 1: live with v5 layout (decomposer + scorer, no forecast)
        w.string("live");
        w.u64(7);
        w.u8(1);
        encode_decomposer_v8(&mut w, &live_dec);
        encode_scorer(&mut w, &live_scorer);

        let back = decode(&w.buf).expect("v5 must stay readable");
        assert_eq!(back.config, config, "forecast comes back disabled");
        assert_eq!(back.config.forecast, ForecastOptions::default());
        match &back.series[0].phase {
            PhaseSnapshot::Warming { overrides, .. } => {
                assert_eq!(overrides, &warm_overrides, "v5 overrides decode, forecast None");
            }
            _ => panic!("series 0 must be warming"),
        }
        match &back.series[1].phase {
            PhaseSnapshot::Live { decomposer, scorer, forecast, backend } => {
                assert_eq!(decomposer, &live_dec, "decomposer state bit-identical");
                assert_eq!(scorer, &live_scorer, "full v5 scorer state bit-identical");
                assert!(forecast.is_none(), "v5 live series carry no forecast head");
                assert!(backend.is_none(), "v5 live series carry no backend state");
            }
            _ => panic!("series 1 must be live"),
        }
        // the restored detector continues bit-identically to the v5
        // writer's uninterrupted continuation
        let PhaseSnapshot::Live { decomposer, scorer, .. } = back.series[1].phase.clone()
        else {
            unreachable!();
        };
        let mut restored = oneshotstl::StdAnomalyDetector::from_parts(
            oneshotstl::OneShotStl::from_state(decomposer).unwrap(),
            oneshotstl::ResidualScorer::from_state(scorer),
        );
        for i in 0..3 * t {
            let x = 1.5
                + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                + if i == t { 4.0 } else { 0.0 };
            let (pa, va) = det.update_scored(x);
            let (pb, vb) = restored.update_scored(x);
            assert_eq!(pa.residual.to_bits(), pb.residual.to_bits());
            assert_eq!(va.score.to_bits(), vb.score.to_bits());
            assert_eq!(va.is_anomaly, vb.is_anomaly);
        }
        // ...and a v5 image re-encodes as v9 (upgrade-on-rewrite)
        let re = encode(&back);
        assert_eq!(re[8], 9, "re-encoded version");
        assert_eq!(decode(&re).unwrap(), back);
    }

    /// Hand-encodes the v6 layout (forecast options/overrides/state, but
    /// **no** backend fields anywhere) and checks the v7 reader restores
    /// it: the backend selection comes back [`BackendSelect::Fused`] —
    /// the plain fused-scorer pipeline every v6 writer actually ran — no
    /// live series carries backend state, and the restored detector
    /// stream continues bit-identically.
    #[test]
    fn v6_snapshots_still_decode() {
        let t = 12usize;
        let y: Vec<f64> = (0..8 * t)
            .map(|i| 1.5 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let score = ScoreConfig {
            cusum_k: 0.5,
            cusum_h: 6.0,
            hold_decay: 0.8,
            ..ScoreConfig::default()
        };
        let mut det = oneshotstl::StdAnomalyDetector::with_score(
            oneshotstl::OneShotStl::new(OneShotStlConfig::default()),
            5.0,
            score,
        );
        det.init(&y[..4 * t], t).unwrap();
        for &v in &y[4 * t..] {
            det.update_scored(v);
        }
        let live_dec = det.decomposer.to_state();
        let live_scorer = det.scorer().to_state();
        let mut tracker = forecast::RollingError::new(8);
        tracker.record(1.5, 1.4);
        tracker.record(1.6, 1.7);
        let live_forecast = ForecastSnapshot {
            options: ForecastOptions { damping: 0.9, ..ForecastOptions::on() },
            pending: 1.55,
            has_pending: true,
            tracker: tracker.to_state(),
        };

        let config = FleetConfig {
            score,
            forecast: ForecastOptions { error_window: 32, ..ForecastOptions::on() },
            ..FleetConfig::fixed_period(t)
        };
        let warm_overrides = AdmitOptions {
            lambda: Some(2.0),
            nsigma: Some(4.0),
            period: Some(t),
            shift_search: Some(ShiftSearchConfig::top_k(3)),
            score: Some(score),
            forecast: Some(ForecastOptions::on()),
            backend: None, // v6 has no backend override
        };

        let mut w = Writer::default();
        w.bytes(MAGIC);
        w.u16(6);
        w.u8(KIND_FULL);
        // config, v6 layout: ends after the forecast options (no backend)
        let c = &config;
        w.u32(c.shards as u32);
        w.u32(c.init_cycles as u32);
        match &c.period {
            PeriodPolicy::Fixed(p) => {
                w.u8(0);
                w.u32(*p as u32);
            }
            PeriodPolicy::Detect { .. } => unreachable!("fixture uses a fixed period"),
        }
        w.opt_u32(c.max_warmup.map(|v| v as u32));
        w.f64(c.nsigma);
        w.opt_u64(c.ttl);
        w.opt_u64(c.max_clock_step);
        w.opt_u64(c.queue_capacity.map(|v| v as u64));
        w.u8(0); // QueuePolicy::Block
        encode_detector_config(&mut w, &c.detector);
        encode_score_config(&mut w, &c.score);
        encode_forecast_options(&mut w, &c.forecast);
        w.u64(7); // clock
        w.u64(3); // batches
        w.u64(0); // totals
        w.u64(1);
        w.u64(200);
        w.u64(2);
        w.u64(2); // series count
                  // series 0: warming with v6 overrides (no backend tag)
        w.string("warm");
        w.u64(5);
        w.u8(0);
        w.vec_f64(&[1.0, 2.0, 3.0]);
        w.opt_u32(Some(t as u32));
        w.u64(3);
        w.opt_f64(warm_overrides.lambda);
        w.opt_f64(warm_overrides.nsigma);
        w.opt_u32(warm_overrides.period.map(|v| v as u32));
        w.u8(1);
        encode_shift_search(&mut w, warm_overrides.shift_search.as_ref().unwrap());
        w.u8(1);
        encode_score_config(&mut w, warm_overrides.score.as_ref().unwrap());
        w.u8(1);
        encode_forecast_options(&mut w, warm_overrides.forecast.as_ref().unwrap());
        // series 1: live with v6 layout (decomposer + scorer + forecast,
        // no backend presence tag)
        w.string("live");
        w.u64(7);
        w.u8(1);
        encode_decomposer_v8(&mut w, &live_dec);
        encode_scorer(&mut w, &live_scorer);
        w.u8(1);
        encode_forecast_state(&mut w, &live_forecast);

        let back = decode(&w.buf).expect("v6 must stay readable");
        assert_eq!(back.config, config, "backend comes back Fused");
        assert_eq!(back.config.backend, BackendSelect::Fused);
        match &back.series[0].phase {
            PhaseSnapshot::Warming { overrides, .. } => {
                assert_eq!(overrides, &warm_overrides, "v6 overrides decode, backend None");
            }
            _ => panic!("series 0 must be warming"),
        }
        match &back.series[1].phase {
            PhaseSnapshot::Live { decomposer, scorer, forecast, backend } => {
                assert_eq!(decomposer, &live_dec, "decomposer state bit-identical");
                assert_eq!(scorer, &live_scorer, "scorer state bit-identical");
                assert_eq!(forecast.as_ref(), Some(&live_forecast), "forecast decodes");
                assert!(backend.is_none(), "v6 live series carry no backend state");
            }
            _ => panic!("series 1 must be live"),
        }
        // the restored detector continues bit-identically to the v6
        // writer's uninterrupted continuation
        let PhaseSnapshot::Live { decomposer, scorer, .. } = back.series[1].phase.clone()
        else {
            unreachable!();
        };
        let mut restored = oneshotstl::StdAnomalyDetector::from_parts(
            oneshotstl::OneShotStl::from_state(decomposer).unwrap(),
            oneshotstl::ResidualScorer::from_state(scorer),
        );
        for i in 0..3 * t {
            let x = 1.5
                + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                + if i == t { 4.0 } else { 0.0 };
            let (pa, va) = det.update_scored(x);
            let (pb, vb) = restored.update_scored(x);
            assert_eq!(pa.residual.to_bits(), pb.residual.to_bits());
            assert_eq!(va.score.to_bits(), vb.score.to_bits());
            assert_eq!(va.is_anomaly, vb.is_anomaly);
        }
        // ...and a v6 image re-encodes as v9 (upgrade-on-rewrite)
        let re = encode(&back);
        assert_eq!(re[8], 9, "re-encoded version");
        assert_eq!(decode(&re).unwrap(), back);
    }

    /// A v8 reader must keep decoding hand-encoded v7 images: the health
    /// counters come back zero (no pre-v8 writer tracked them), the
    /// `Quarantined` phase tag is rejected as invalid in a v7 image (no
    /// pre-v8 writer emitted it), and re-encoding upgrades to v8.
    #[test]
    fn v7_snapshots_still_decode() {
        let t = 12usize;
        let config = FleetConfig {
            backend: BackendSelect::Damp(DampOptions { window: 64, subseq: 8 }),
            ..FleetConfig::fixed_period(t)
        };
        let warm_overrides = AdmitOptions {
            backend: Some(BackendSelect::TrendCusum(ScoreConfig::default())),
            ..AdmitOptions::default()
        };

        let mut w = Writer::default();
        w.bytes(MAGIC);
        w.u16(7);
        w.u8(KIND_FULL);
        encode_config_v8(&mut w, &config); // v7 config layout == v8 (backend incl.)
        w.u64(7); // clock
        w.u64(3); // batches
        w.u64(0); // totals, v7 layout: four counters, no health counters
        w.u64(1);
        w.u64(200);
        w.u64(2);
        w.u64(1); // series count
        w.string("warm");
        w.u64(5);
        w.u8(0);
        w.vec_f64(&[1.0, 2.0, 3.0]);
        w.opt_u32(Some(t as u32));
        w.u64(3);
        encode_admit_options(&mut w, &warm_overrides); // v7 overrides incl. backend

        let back = decode(&w.buf).expect("v7 must stay readable");
        assert_eq!(back.config, config, "v7 config decodes with its backend");
        assert_eq!(
            back.totals,
            CarriedTotals {
                evicted: 0,
                admitted: 1,
                points: 200,
                anomalies: 2,
                ..Default::default()
            },
            "pre-v8 health counters start at 0"
        );
        match &back.series[0].phase {
            PhaseSnapshot::Warming { overrides, .. } => {
                assert_eq!(overrides, &warm_overrides, "v7 backend override decodes");
            }
            _ => panic!("series 0 must be warming"),
        }

        // a v7 image smuggling the v8-only Quarantined tag is rejected
        let mut bad = Writer::default();
        bad.bytes(MAGIC);
        bad.u16(7);
        bad.u8(KIND_FULL);
        encode_config_v8(&mut bad, &config);
        bad.u64(7);
        bad.u64(3);
        bad.u64(0);
        bad.u64(1);
        bad.u64(200);
        bad.u64(2);
        bad.u64(1);
        bad.string("q");
        bad.u64(5);
        bad.u8(3); // Quarantined phase tag: v8-only
        bad.u8(0);
        bad.u64(4);
        assert!(
            matches!(decode(&bad.buf), Err(CodecError::Invalid("series phase tag"))),
            "quarantine tag must not decode from a pre-v8 image"
        );

        // ...and a v7 image re-encodes as v9 (upgrade-on-rewrite)
        let re = encode(&back);
        assert_eq!(re[8], 9, "re-encoded version");
        assert_eq!(decode(&re).unwrap(), back);
    }

    /// A v9 reader must keep decoding hand-encoded v8 images: the config
    /// ends after the backend selection (compression comes back `Exact`,
    /// `spill_after` `None` — what every v8 writer ran), the state
    /// vectors are untagged plain `f64`s, the Quarantined phase decodes,
    /// and re-encoding upgrades to v9.
    #[test]
    fn v8_snapshots_still_decode() {
        let t = 12usize;
        let y: Vec<f64> = (0..8 * t)
            .map(|i| 1.5 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let mut det = oneshotstl::StdAnomalyDetector::with_score(
            oneshotstl::OneShotStl::new(OneShotStlConfig::default()),
            5.0,
            ScoreConfig::default(),
        );
        det.init(&y[..4 * t], t).unwrap();
        for &v in &y[4 * t..] {
            det.update_scored(v);
        }
        let live_dec = det.decomposer.to_state();
        let live_scorer = det.scorer().to_state();
        let config = FleetConfig::fixed_period(t);

        let mut w = Writer::default();
        w.bytes(MAGIC);
        w.u16(8);
        w.u8(KIND_FULL);
        encode_config_v8(&mut w, &config);
        w.u64(7); // clock
        w.u64(3); // batches
        w.u64(1); // totals, v8 layout: all seven counters
        w.u64(2);
        w.u64(300);
        w.u64(4);
        w.u64(5);
        w.u64(6);
        w.u64(7);
        w.u64(2); // series count
                  // series 0: live with v8 layout (untagged f64 vectors)
        w.string("live");
        w.u64(9);
        w.u8(1);
        encode_decomposer_v8(&mut w, &live_dec);
        encode_scorer(&mut w, &live_scorer);
        w.u8(0); // no forecast head
        w.u8(0); // no backend state
                 // series 1: quarantined (the v8 phase tag)
        w.string("q");
        w.u64(5);
        w.u8(3);
        w.u8(1); // QuarantineCause::Panic
        w.u64(11);

        let back = decode(&w.buf).expect("v8 must stay readable");
        assert_eq!(back.config.compression, StateCompression::Exact);
        assert_eq!(back.config.spill_after, None);
        assert_eq!(back.config, config);
        assert_eq!(
            back.totals,
            CarriedTotals {
                evicted: 1,
                admitted: 2,
                points: 300,
                anomalies: 4,
                wal_retries: 5,
                shard_restarts: 6,
                undurable_batches: 7,
            },
            "v8 health counters decode"
        );
        match &back.series[0].phase {
            PhaseSnapshot::Live { decomposer, scorer, forecast, backend } => {
                assert_eq!(decomposer, &live_dec, "decomposer state bit-identical");
                assert_eq!(scorer, &live_scorer, "scorer state bit-identical");
                assert!(forecast.is_none() && backend.is_none());
            }
            _ => panic!("series 0 must be live"),
        }
        assert_eq!(
            back.series[1].phase,
            PhaseSnapshot::Quarantined { cause: QuarantineCause::Panic, dropped: 11 }
        );
        // the restored detector continues bit-identically to the v8
        // writer's uninterrupted continuation
        let PhaseSnapshot::Live { decomposer, scorer, .. } = back.series[0].phase.clone()
        else {
            unreachable!();
        };
        let mut restored = oneshotstl::StdAnomalyDetector::from_parts(
            oneshotstl::OneShotStl::from_state(decomposer).unwrap(),
            oneshotstl::ResidualScorer::from_state(scorer),
        );
        for i in 0..3 * t {
            let x = 1.5
                + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                + if i == t { 4.0 } else { 0.0 };
            let (pa, va) = det.update_scored(x);
            let (pb, vb) = restored.update_scored(x);
            assert_eq!(pa.residual.to_bits(), pb.residual.to_bits());
            assert_eq!(va.score.to_bits(), vb.score.to_bits());
            assert_eq!(va.is_anomaly, vb.is_anomaly);
        }
        // ...and a v8 image re-encodes as v9 (upgrade-on-rewrite)
        let re = encode(&back);
        assert_eq!(re[8], 9, "re-encoded version");
        assert_eq!(decode(&re).unwrap(), back);
    }

    /// Compact mode: state vectors land delta-encoded at `f32` precision
    /// — materially smaller, reconstructed within `f32`-delta tolerance,
    /// still restorable into a running detector, and **byte-stable under
    /// re-encode** so repeated snapshot cycles do not drift.
    #[test]
    fn compact_compression_shrinks_and_reencodes_stably() {
        let t = 24usize;
        let y: Vec<f64> = (0..10 * t)
            .map(|i| 50.0 + 8.0 * (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let mut det = oneshotstl::StdAnomalyDetector::new(
            oneshotstl::OneShotStl::new(OneShotStlConfig::default()),
            5.0,
        );
        det.init(&y[..4 * t], t).unwrap();
        for &v in &y[4 * t..] {
            det.update(v);
        }
        let live = SeriesSnapshot {
            key: SeriesKey::new("live"),
            last_seen: 60,
            phase: PhaseSnapshot::Live {
                decomposer: det.decomposer.to_state(),
                scorer: det.scorer().to_state(),
                forecast: None,
                backend: None,
            },
        };
        let mut snap = FleetSnapshot {
            config: FleetConfig {
                compression: StateCompression::Compact,
                ..FleetConfig::fixed_period(t)
            },
            clock: 99,
            batches: 7,
            totals: CarriedTotals::default(),
            series: vec![live],
        };
        let compact = encode(&snap);
        snap.config.compression = StateCompression::Exact;
        let exact = encode(&snap);
        assert!(
            compact.len() < exact.len() * 3 / 4,
            "compact must be materially smaller: {} vs {} bytes",
            compact.len(),
            exact.len()
        );
        let back = decode(&compact).expect("compact image decodes");
        assert_eq!(back.config.compression, StateCompression::Compact);
        let PhaseSnapshot::Live { decomposer, .. } = &back.series[0].phase else {
            unreachable!();
        };
        let orig = det.decomposer.to_state();
        assert_eq!(decomposer.v.len(), orig.v.len());
        for (a, b) in decomposer.v.iter().zip(&orig.v) {
            assert!(
                (a - b).abs() <= 1e-3 * b.abs().max(1.0),
                "f32-delta tolerance: {a} vs {b}"
            );
        }
        // the reconstruction restores into a working detector
        oneshotstl::OneShotStl::from_state(decomposer.clone())
            .expect("compact-restored state is structurally valid");
        // re-encode is byte-identical: encode∘decode is the identity on
        // compact images, so repeated snapshot cycles are stable
        assert_eq!(encode(&back), compact, "compact re-encode must not drift");
    }

    /// Cold-tier series blobs round-trip bit-identically — even when the
    /// engine snapshots compact, the cold store stays exact — and
    /// corrupted blobs are rejected with typed errors.
    #[test]
    fn series_blob_roundtrips_exactly() {
        let snap = sample_snapshot();
        for s in &snap.series {
            let blob = encode_series_blob(s);
            assert_eq!(&decode_series_blob(&blob).unwrap(), s);
            assert!(decode_series_blob(&blob[..blob.len() - 1]).is_err(), "truncated blob");
            let mut trailing = blob.clone();
            trailing.push(0);
            assert!(decode_series_blob(&trailing).is_err(), "trailing bytes");
        }
        let mut bad_version = encode_series_blob(&snap.series[0]);
        bad_version[0] = 0xEE;
        assert!(matches!(
            decode_series_blob(&bad_version),
            Err(CodecError::UnsupportedVersion(_))
        ));
    }

    /// The delta chain-header parser reads `(prev_batches, batches)`
    /// without touching the series body, and refuses full images.
    #[test]
    fn delta_chain_header_parses_without_the_body() {
        let delta = FleetDelta {
            config: FleetConfig::fixed_period(24),
            prev_batches: 90,
            clock: 300,
            batches: 130,
            totals: CarriedTotals::default(),
            series: vec![],
            tombstones: vec![SeriesKey::new("gone")],
        };
        assert_eq!(decode_delta_chain(&encode_delta(&delta)).unwrap(), (90, 130));
        assert!(decode_delta_chain(&encode(&sample_snapshot())).is_err());
    }

    /// Live backend state — every variant — round-trips through the v7
    /// codec bit-identically, and a crafted image smuggling degenerate
    /// backend state (NaN bsf, non-finite retained values, all-NaN
    /// ensemble weights) fails to decode with a typed error.
    #[test]
    fn backend_state_roundtrips_and_degenerate_state_is_rejected() {
        use crate::backend::BackendScore;
        let t = 12usize;
        let y: Vec<f64> = (0..8 * t)
            .map(|i| 1.0 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let mut det = oneshotstl::StdAnomalyDetector::new(
            oneshotstl::OneShotStl::new(OneShotStlConfig::default()),
            5.0,
        );
        det.init(&y[..4 * t], t).unwrap();
        // run real state into each backend variant
        let selects = [
            BackendSelect::Damp(DampOptions { window: 64, subseq: 8 }),
            BackendSelect::TrendCusum(ScoreConfig::default()),
            BackendSelect::Ensemble(EnsembleOptions::default()),
        ];
        let fused =
            oneshotstl::ScoreVerdict { score: 0.1, z: 0.1, cusum: 0.0, is_anomaly: false };
        for select in selects {
            let mut b = SeriesBackend::build(select, 5.0, t).unwrap();
            for i in 0..150 {
                let p = tskit::series::DecompPoint {
                    trend: 1.0 + 0.01 * i as f64,
                    seasonal: 0.0,
                    residual: 0.2 * (i as f64 / 3.0).sin(),
                };
                let _: BackendScore = b.observe(&p, &fused);
            }
            let mut snap = sample_snapshot();
            snap.series.push(SeriesSnapshot {
                key: SeriesKey::new("live"),
                last_seen: 60,
                phase: PhaseSnapshot::Live {
                    decomposer: det.decomposer.to_state(),
                    scorer: det.scorer().to_state(),
                    forecast: None,
                    backend: Some(b.to_snapshot()),
                },
            });
            let back = decode(&encode(&snap)).expect("backend-bearing image decodes");
            assert_eq!(back, snap, "{select:?} round-trips bit-identically");
        }
        // degenerate state must be rejected, never restored
        let mut b =
            SeriesBackend::build(BackendSelect::Ensemble(EnsembleOptions::default()), 5.0, t)
                .unwrap();
        for i in 0..120 {
            let p = tskit::series::DecompPoint {
                trend: 1.0,
                seasonal: 0.0,
                residual: 0.2 * (i as f64 / 3.0).sin(),
            };
            b.observe(&p, &fused);
        }
        let BackendSnapshot::Ensemble { damp, trend, fusion, weights } = b.to_snapshot() else {
            unreachable!()
        };
        let make = |bs: BackendSnapshot| {
            let mut snap = sample_snapshot();
            snap.series.push(SeriesSnapshot {
                key: SeriesKey::new("live"),
                last_seen: 60,
                phase: PhaseSnapshot::Live {
                    decomposer: det.decomposer.to_state(),
                    scorer: det.scorer().to_state(),
                    forecast: None,
                    backend: Some(bs),
                },
            });
            encode(&snap)
        };
        let mut bad_damp = damp.clone();
        bad_damp.damp.bsf = f64::NAN;
        assert_eq!(
            decode(&make(BackendSnapshot::Damp(bad_damp))),
            Err(CodecError::Invalid("backend state")),
            "NaN bsf"
        );
        let mut bad_buf = damp.clone();
        if let Some(v) = bad_buf.damp.buf.first_mut() {
            *v = f64::INFINITY;
        }
        assert!(decode(&make(BackendSnapshot::Damp(bad_buf))).is_err(), "non-finite value");
        let mut bad_trend = trend.clone();
        bad_trend.prev = f64::NAN;
        assert!(
            decode(&make(BackendSnapshot::TrendCusum(bad_trend))).is_err(),
            "NaN trend prev"
        );
        let bad_weights = BackendSnapshot::Ensemble {
            damp: damp.clone(),
            trend: trend.clone(),
            fusion,
            weights: [f64::NAN; 3],
        };
        assert!(decode(&make(bad_weights)).is_err(), "NaN ensemble weights");
        let _ = weights;
    }

    /// A crafted v6 image smuggling degenerate forecast state — a NaN
    /// pending prediction, NaN tracker sums, ragged rings — must fail to
    /// decode, not poison every sMAPE read after restore.
    #[test]
    fn degenerate_decoded_forecast_state_is_rejected() {
        let t = 12usize;
        let y: Vec<f64> = (0..6 * t)
            .map(|i| 1.0 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let mut det = oneshotstl::StdAnomalyDetector::new(
            oneshotstl::OneShotStl::new(OneShotStlConfig::default()),
            5.0,
        );
        det.init(&y[..4 * t], t).unwrap();
        let make = |mutate: &dyn Fn(&mut ForecastSnapshot)| {
            let mut tracker = forecast::RollingError::new(8);
            tracker.record(1.0, 1.1);
            tracker.record(2.0, 1.9);
            let mut fc = ForecastSnapshot {
                options: ForecastOptions::on(),
                pending: 1.5,
                has_pending: true,
                tracker: tracker.to_state(),
            };
            mutate(&mut fc);
            let mut snap = sample_snapshot();
            snap.series.push(SeriesSnapshot {
                key: SeriesKey::new("live"),
                last_seen: 50,
                phase: PhaseSnapshot::Live {
                    decomposer: det.decomposer.to_state(),
                    scorer: det.scorer().to_state(),
                    forecast: Some(fc),
                    backend: None,
                },
            });
            encode(&snap)
        };
        // intact state decodes…
        decode(&make(&|_| {})).expect("valid forecast state decodes");
        // …corrupted state does not
        assert!(decode(&make(&|f| f.pending = f64::NAN)).is_err(), "NaN pending");
        assert!(decode(&make(&|f| f.tracker.sum_abs = f64::NAN)).is_err(), "NaN sum");
        assert!(decode(&make(&|f| f.tracker.abs[0] = -1.0)).is_err(), "negative term");
        assert!(
            decode(&make(&|f| {
                f.tracker.sm.pop();
            }))
            .is_err(),
            "ragged rings"
        );
        assert!(decode(&make(&|f| f.tracker.head = 99)).is_err(), "cursor out of range");
        assert!(decode(&make(&|f| f.options.damping = 1.5)).is_err(), "bad damping");
    }

    #[test]
    fn bad_inputs_are_rejected_not_panicked() {
        let snap = sample_snapshot();
        let bytes = encode(&snap);
        assert_eq!(decode(b"short"), Err(CodecError::Truncated));
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert_eq!(decode(&wrong_magic), Err(CodecError::BadMagic));
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 0xEE;
        assert!(matches!(decode(&wrong_version), Err(CodecError::UnsupportedVersion(_))));
        // every truncation point fails cleanly
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should not decode");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            decode(&trailing),
            Err(CodecError::Invalid("trailing bytes after snapshot"))
        );
    }
}
