//! Shared append-only write-ahead log of raw ingested points, with
//! group-commit flushing.
//!
//! Durability in the fleet is two-tier: periodic snapshots capture the
//! engine state ([`crate::codec`] — full bases plus incremental deltas),
//! and between snapshots every ingested batch is first appended to the
//! WAL by each shard it routes to. Crash recovery ([`crate::persist`])
//! loads the newest valid snapshot chain and replays the WAL tail through
//! the normal ingest path, which makes the recovered state
//! **bit-identical** to an uninterrupted run over the same durable prefix.
//!
//! ## Group commit
//!
//! All shard workers write to **one shared segment per generation**
//! through [`GroupWal`], a mutex-guarded flush coordinator. Each batch
//! carries its fanout (how many shards append a frame for it); the last
//! arriving appender issues the **single** `fsync` covering the whole
//! batch while earlier appenders wait on a condvar until the flush covers
//! their bytes. A synced batch therefore costs exactly **1 fsync instead
//! of `shards`** (pinned by a flush-counter test in `tests/fleet_persist`)
//! while keeping the guarantee that a shard's reply implies its frame is
//! on stable storage. A failed write or flush poisons the log: every
//! subsequent append errors, and the shard workers crash-stop (under
//! [`crate::DurabilityPolicy::CrashStop`]) or keep serving un-durably
//! while the durability layer re-arms a fresh log (under
//! [`crate::DurabilityPolicy::Degrade`]).
//!
//! ## On-disk format
//!
//! One file per generation, named `wal-<start_seq>-0000.flog` where
//! `start_seq` is the engine batch sequence the segment starts *after*
//! (segments rotate when a snapshot is triggered, so segment
//! `start_seq = S` holds batches `S+1, S+2, …`; the trailing index is a
//! legacy slot from the per-shard era and is always 0). Layout follows the
//! snapshot codec conventions — little-endian integers, bit-pattern
//! `f64`s, `u32`-length-prefixed strings:
//!
//! ```text
//! header   magic b"OSTLWLOG" · u16 version · u32 shard · u64 start_seq
//! record*  u32 payload_len · u32 crc32(payload) · payload
//! payload  u64 seq · u32 batch_n · u32 count ·
//!          count × { u32 idx · u64 t · f64 value · string key }
//! ```
//!
//! `seq` is the engine-wide batch sequence number, `batch_n` the total
//! record count of that batch across *all* shards, and `idx` each record's
//! position in the caller's batch — together they let recovery reassemble
//! the exact original batches from the interleaved per-shard frames and
//! detect batches that were only partially appended when the process died.
//! Frames of one batch may interleave with frames of neighbouring batches
//! (shard workers append concurrently); recovery orders by `seq`, so the
//! interleaving is irrelevant.
//!
//! ## Torn tails
//!
//! Appends are crash-atomic at record granularity: a record interrupted
//! mid-write fails its length or CRC check, and [`read_segment`] stops at
//! the first bad byte, reporting everything before it. The group `fsync`
//! runs every [`crate::DurabilityConfig::fsync_every`] batches (and on
//! rotation), so an OS crash can leave at most that many un-fsynced
//! recent batches — and since recovery keeps only the longest complete
//! batch prefix, the batches from the first lost frame onward are
//! discarded. A process crash loses nothing that `append` returned `Ok`
//! for.

use crate::codec::{Reader, Writer};
use crate::fault;
use crate::types::SeriesKey;
use std::collections::HashMap;
use std::fs::File;
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

const WAL_MAGIC: &[u8; 8] = b"OSTLWLOG";
const WAL_VERSION: u16 = 1;
/// Header size in bytes: magic + version + shard + start_seq. Shared with
/// [`crate::persist`]'s torn-tail truncation, which must never cut into a
/// header.
pub(crate) const HEADER_LEN: u64 = 8 + 2 + 4 + 8;
/// Upper bound on a single record payload — anything larger is treated as
/// corruption rather than an allocation request.
const MAX_PAYLOAD: u32 = 1 << 30;

/// One raw ingested record inside a WAL frame.
#[derive(Debug, Clone, PartialEq)]
pub struct WalItem {
    /// Position of the record in the caller's original batch.
    pub idx: u32,
    /// The record's raw event time (pre-clamping — replay re-derives the
    /// engine clock exactly as the original run did).
    pub t: u64,
    /// The observed value.
    pub value: f64,
    /// The record's series.
    pub key: SeriesKey,
}

/// One appended record: the slice of one engine batch that routed to this
/// shard (possibly empty for the batch-marker frame on shard 0).
#[derive(Debug, Clone, PartialEq)]
pub struct WalFrame {
    /// Engine-wide batch sequence number (1-based, monotonically
    /// increasing across the engine's lifetime).
    pub seq: u64,
    /// Total records in the original batch across all shards — recovery
    /// declares the batch complete when the frames it gathered sum to
    /// this.
    pub batch_n: u32,
    /// The records of that batch routed to this shard, in batch order.
    pub items: Vec<WalItem>,
}

impl WalFrame {
    fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.u64(self.seq);
        w.u32(self.batch_n);
        w.u32(self.items.len() as u32);
        for it in &self.items {
            w.u32(it.idx);
            w.u64(it.t);
            w.f64(it.value);
            w.string(it.key.as_str());
        }
        w.buf
    }

    fn decode_payload(bytes: &[u8]) -> Option<WalFrame> {
        let mut r = Reader { data: bytes, pos: 0 };
        let seq = r.u64().ok()?;
        let batch_n = r.u32().ok()?;
        let count = r.u32().ok()? as usize;
        let mut items = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            items.push(WalItem {
                idx: r.u32().ok()?,
                t: r.u64().ok()?,
                value: r.f64().ok()?,
                key: SeriesKey::new(r.string().ok()?),
            });
        }
        if r.pos != bytes.len() {
            return None;
        }
        Some(WalFrame { seq, batch_n, items })
    }
}

/// Encodes one frame as a complete record (`u32 len · u32 crc · payload`).
fn encode_record(frame: &WalFrame) -> Vec<u8> {
    let payload = frame.encode_payload();
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec
}

/// Encodes one shard's columnar sub-batch as a complete WAL record
/// (`u32 len · u32 crc32 · payload`) into `buf`, reusing its capacity.
/// The payload bytes are identical to [`WalFrame::encode_payload`] over
/// the equivalent items, so recovery decodes both the same way — pinned by
/// a round-trip test below.
pub(crate) fn encode_record_into(
    buf: &mut Vec<u8>,
    seq: u64,
    batch_n: u32,
    batch: &crate::batch::ShardBatch,
) {
    let mut w = Writer { buf: std::mem::take(buf) };
    w.buf.clear();
    w.buf.extend_from_slice(&[0u8; 8]); // len + crc, backfilled below
    w.u64(seq);
    w.u32(batch_n);
    w.u32(batch.len() as u32);
    for i in 0..batch.len() {
        w.u32(batch.idx[i]);
        w.u64(batch.ts[i]);
        w.f64(batch.values[i]);
        w.string(batch.keys[i].as_str());
    }
    let payload_len = (w.buf.len() - 8) as u32;
    let crc = crc32(&w.buf[8..]);
    w.buf[..4].copy_from_slice(&payload_len.to_le_bytes());
    w.buf[4..8].copy_from_slice(&crc.to_le_bytes());
    *buf = w.buf;
}

/// An open, append-only WAL segment owned by one shard worker.
#[derive(Debug)]
pub struct Wal {
    file: File,
    dir: PathBuf,
    path: PathBuf,
    shard: usize,
    start_seq: u64,
}

impl Wal {
    /// Creates (or truncates) the segment file for `shard` starting after
    /// batch `start_seq`, writing the header. All file operations go
    /// through the [`crate::fault`] seam (passthrough in production).
    pub fn create(
        dir: impl Into<PathBuf>,
        shard: usize,
        start_seq: u64,
    ) -> std::io::Result<Self> {
        let dir = dir.into();
        let path = dir.join(segment_file_name(start_seq, shard));
        let mut file = fault::create_file(&path)?;
        let mut w = Writer::default();
        w.buf.extend_from_slice(WAL_MAGIC);
        w.buf.extend_from_slice(&WAL_VERSION.to_le_bytes());
        w.u32(shard as u32);
        w.u64(start_seq);
        fault::write_all(&mut file, &path, &w.buf)?;
        // make the new directory entry durable too: per-append fsyncs
        // protect the file's *contents*, but an OS crash could still drop
        // the whole segment if its name never reached the disk
        fault::sync_dir(&dir)?;
        Ok(Wal { file, dir, path, shard, start_seq })
    }

    /// Appends one frame; `sync` additionally forces the segment to stable
    /// storage (`fsync`) after the write.
    pub fn append(&mut self, frame: &WalFrame, sync: bool) -> std::io::Result<()> {
        self.append_record(&encode_record(frame), sync)
    }

    /// Appends one pre-encoded record (`u32 len · u32 crc · payload`,
    /// already laid out — see [`encode_record_into`]).
    fn append_record(&mut self, rec: &[u8], sync: bool) -> std::io::Result<()> {
        fault::write_all(&mut self.file, &self.path, rec)?;
        if sync {
            fault::sync_data(&self.file, &self.path)?;
        }
        Ok(())
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        fault::sync_data(&self.file, &self.path)
    }

    /// Rotates to a fresh segment starting after batch `start_seq`. The
    /// previous segment is synced and closed; deleting it once a covering
    /// snapshot is durable is the caller's job ([`crate::persist`]).
    pub fn rotate(&mut self, start_seq: u64) -> std::io::Result<()> {
        self.file.sync_data()?;
        let next = Wal::create(self.dir.clone(), self.shard, start_seq)?;
        *self = next;
        Ok(())
    }

    /// The batch sequence this segment starts after.
    pub fn start_seq(&self) -> u64 {
        self.start_seq
    }
}

/// Coordinator state behind the [`GroupWal`] mutex.
struct GroupInner {
    wal: Wal,
    /// Records appended so far (monotone logical clock for coverage).
    appended: u64,
    /// `appended` value covered by the last completed `fsync`.
    flushed: u64,
    /// Outstanding appenders per synced batch seq (initialized to the
    /// batch's fanout; the appender that drops it to 0 flushes).
    pending: HashMap<u64, u32>,
    /// First I/O error; once set, every subsequent operation fails with it
    /// (a half-durable log must not accept more appends).
    poisoned: Option<String>,
}

impl GroupInner {
    fn check(&self) -> std::io::Result<()> {
        match &self.poisoned {
            None => Ok(()),
            Some(e) => Err(std::io::Error::other(e.clone())),
        }
    }

    fn poison(&mut self, e: &std::io::Error) {
        if self.poisoned.is_none() {
            self.poisoned = Some(e.to_string());
        }
    }
}

/// The shared write-ahead log: one segment per generation, appended to by
/// every shard worker, flushed by group commit (see the module docs).
/// Rotation and explicit syncs are engine-thread operations; the protocol
/// guarantees no appender is active then (the engine's `&mut` API means
/// snapshot collection has drained every shard queue first).
pub struct GroupWal {
    inner: Mutex<GroupInner>,
    flushed_cv: Condvar,
    fsyncs: AtomicU64,
}

impl GroupWal {
    /// Creates the shared segment for the generation starting after batch
    /// `start_seq`.
    pub fn create(dir: impl Into<PathBuf>, start_seq: u64) -> std::io::Result<Self> {
        let wal = Wal::create(dir, 0, start_seq)?;
        Ok(GroupWal {
            inner: Mutex::new(GroupInner {
                wal,
                appended: 0,
                flushed: 0,
                pending: HashMap::new(),
                poisoned: None,
            }),
            flushed_cv: Condvar::new(),
            fsyncs: AtomicU64::new(0),
        })
    }

    /// Poisons the log from outside the append path and wakes every
    /// group-commit waiter. Called by a shard worker's unwind guard: a
    /// worker that dies *between* appends would otherwise leave a batch's
    /// fanout count unreachable and its co-appenders waiting forever —
    /// poisoning turns the hang into the normal crash-stop error path.
    /// (A panic *while holding* the mutex poisons the `std` mutex itself,
    /// which the waiters' `expect` converts into worker death too.)
    pub fn poison(&self, msg: &str) {
        let mut g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if g.poisoned.is_none() {
            g.poisoned = Some(msg.to_string());
        }
        self.flushed_cv.notify_all();
    }

    /// Appends one shard's frame of batch `frame.seq`. When `sync` is
    /// true, returns only once an `fsync` covering the append has
    /// completed: the appender that completes the batch (its arrival makes
    /// `fanout` appends) issues the one flush; the others wait for it.
    /// Coverage is monotone, so a later batch's flush releases earlier
    /// waiters too.
    pub fn append(&self, frame: &WalFrame, fanout: u32, sync: bool) -> std::io::Result<()> {
        self.append_record(frame.seq, &encode_record(frame), fanout, sync)
    }

    /// [`GroupWal::append`] over a pre-encoded record of batch `seq` — the
    /// allocation-free path the shard workers use, encoding straight off
    /// their batch columns into a reusable buffer
    /// ([`encode_record_into`]).
    pub(crate) fn append_record(
        &self,
        seq: u64,
        rec: &[u8],
        fanout: u32,
        sync: bool,
    ) -> std::io::Result<()> {
        let mut g = self.inner.lock().expect("group WAL mutex");
        g.check()?;
        if let Err(e) = g.wal.append_record(rec, false) {
            g.poison(&e);
            self.flushed_cv.notify_all();
            return Err(e);
        }
        g.appended += 1;
        if !sync {
            return Ok(());
        }
        let my_mark = g.appended;
        let remaining = g.pending.entry(seq).or_insert(fanout.max(1));
        *remaining -= 1;
        if *remaining == 0 {
            g.pending.remove(&seq);
            // group flush: covers every append made so far, including any
            // frames of neighbouring batches that landed in between
            let covered = g.appended;
            let res = g.wal.sync();
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = res {
                g.poison(&e);
                self.flushed_cv.notify_all();
                return Err(e);
            }
            g.flushed = g.flushed.max(covered);
            self.flushed_cv.notify_all();
            Ok(())
        } else {
            loop {
                if g.flushed >= my_mark {
                    return Ok(());
                }
                g.check()?;
                g = self.flushed_cv.wait(g).expect("group WAL condvar");
            }
        }
    }

    /// Rotates to a fresh shared segment starting after batch `start_seq`
    /// (the outgoing segment is flushed first). Engine-thread only.
    pub fn rotate(&self, start_seq: u64) -> std::io::Result<()> {
        let mut g = self.inner.lock().expect("group WAL mutex");
        g.check()?;
        debug_assert!(g.pending.is_empty(), "rotation with appenders in flight");
        let res = g.wal.rotate(start_seq);
        self.fsyncs.fetch_add(1, Ordering::Relaxed); // rotate flushes the old segment
        if let Err(e) = res {
            g.poison(&e);
            return Err(e);
        }
        g.appended = 0;
        g.flushed = 0;
        g.pending.clear();
        Ok(())
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&self) -> std::io::Result<()> {
        let mut g = self.inner.lock().expect("group WAL mutex");
        g.check()?;
        let covered = g.appended;
        let res = g.wal.sync();
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = res {
            g.poison(&e);
            self.flushed_cv.notify_all();
            return Err(e);
        }
        g.flushed = g.flushed.max(covered);
        self.flushed_cv.notify_all();
        Ok(())
    }

    /// The batch sequence the current segment starts after.
    pub fn start_seq(&self) -> u64 {
        self.inner.lock().expect("group WAL mutex").wal.start_seq()
    }

    /// Lifetime count of `fsync`s issued on the log file (group flushes,
    /// rotations, explicit syncs). The basis of the group-commit
    /// regression test: an acked batch costs at most one.
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// The first I/O error that poisoned this log, if any. A poisoned log
    /// rejects every further operation; the durability layer uses this
    /// probe to notice the outage and (under
    /// [`crate::DurabilityPolicy::Degrade`]) re-arm a fresh generation.
    pub fn poison_reason(&self) -> Option<String> {
        match self.inner.lock() {
            Ok(g) => g.poisoned.clone(),
            Err(p) => p.into_inner().poisoned.clone(),
        }
    }
}

/// Segment file name for (`start_seq`, `shard`) — zero-padded so lexical
/// order equals numeric order.
pub fn segment_file_name(start_seq: u64, shard: usize) -> String {
    format!("wal-{start_seq:020}-{shard:04}.flog")
}

/// Parses a [`segment_file_name`] back into (`start_seq`, `shard`);
/// `None` for non-WAL files.
pub fn parse_segment_name(name: &str) -> Option<(u64, usize)> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".flog")?;
    let (seq, shard) = rest.split_once('-')?;
    Some((seq.parse().ok()?, shard.parse().ok()?))
}

/// One shard's segment as read back from disk, torn-tail tolerant.
#[derive(Debug)]
pub struct WalSegment {
    /// The shard the segment belongs to (from the header).
    pub shard: usize,
    /// The batch sequence the segment starts after (from the header).
    pub start_seq: u64,
    /// Every frame up to the first corruption, in append order.
    pub frames: Vec<WalFrame>,
    /// Byte offset just past each frame in `frames` — the truncation
    /// points recovery uses to drop a torn or unreplayable tail.
    pub frame_ends: Vec<u64>,
    /// True when the file ends in a torn or corrupt record (which the
    /// reader stopped at and excluded).
    pub torn: bool,
}

/// Reads a segment file, stopping cleanly at the first torn or corrupt
/// record. Errors only for I/O failures or an unreadable header — a valid
/// header with garbage after it is a `torn` segment with zero frames.
pub fn read_segment(path: &Path) -> std::io::Result<WalSegment> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let bad_header =
        || std::io::Error::new(std::io::ErrorKind::InvalidData, "not a fleet WAL segment");
    if bytes.len() < HEADER_LEN as usize || &bytes[..8] != WAL_MAGIC {
        return Err(bad_header());
    }
    if u16::from_le_bytes(bytes[8..10].try_into().unwrap()) != WAL_VERSION {
        return Err(bad_header());
    }
    let shard = u32::from_le_bytes(bytes[10..14].try_into().unwrap()) as usize;
    let start_seq = u64::from_le_bytes(bytes[14..22].try_into().unwrap());
    let mut frames = Vec::new();
    let mut frame_ends = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut torn = false;
    while pos < bytes.len() {
        if pos + 8 > bytes.len() {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let end = pos + 8 + len as usize;
        if len > MAX_PAYLOAD || end > bytes.len() {
            torn = true;
            break;
        }
        let payload = &bytes[pos + 8..end];
        if crc32(payload) != crc {
            torn = true;
            break;
        }
        let Some(frame) = WalFrame::decode_payload(payload) else {
            torn = true;
            break;
        };
        frames.push(frame);
        frame_ends.push(end as u64);
        pos = end;
    }
    Ok(WalSegment { shard, start_seq, frames, frame_ends, torn })
}

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("fleet-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn frame(seq: u64, n: u32) -> WalFrame {
        WalFrame {
            seq,
            batch_n: n,
            items: (0..n)
                .map(|i| WalItem {
                    idx: i,
                    t: 100 + u64::from(i),
                    value: std::f64::consts::PI * f64::from(i + 1) * 1e-9,
                    key: SeriesKey::new(format!("host-{i}/cpu")),
                })
                .collect(),
        }
    }

    #[test]
    fn columnar_record_is_byte_identical_to_frame_encoding() {
        // the workers log straight off their batch columns; the bytes must
        // match the WalFrame encoding bit-for-bit or recovery would see a
        // different durable history than the item-based writer produced
        let f = frame(42, 4);
        let mut batch = crate::batch::ShardBatch::default();
        for it in &f.items {
            batch.push(
                it.idx,
                crate::types::Record { key: it.key.clone(), t: it.t, value: it.value },
                it.key.stable_hash(),
                it.t,
            );
        }
        let mut buf = vec![0xAA; 3]; // stale contents must not leak in
        encode_record_into(&mut buf, f.seq, f.batch_n, &batch);
        assert_eq!(buf, encode_record(&f));
        // an empty sub-batch (the shard-0 marker frame) matches too
        let empty = frame(43, 0);
        encode_record_into(&mut buf, empty.seq, empty.batch_n, &Default::default());
        assert_eq!(buf, encode_record(&empty));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // standard check value for "123456789" under CRC-32/IEEE
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn segment_names_roundtrip_and_sort() {
        let name = segment_file_name(42, 3);
        assert_eq!(parse_segment_name(&name), Some((42, 3)));
        assert_eq!(parse_segment_name("snap-0000.fsnap"), None);
        assert!(segment_file_name(9, 0) < segment_file_name(10, 0), "lexical == numeric");
    }

    #[test]
    fn append_read_roundtrip_bit_identical() {
        let dir = tmp_dir("roundtrip");
        let mut wal = Wal::create(&dir, 2, 7).unwrap();
        let frames = vec![frame(8, 3), frame(9, 0), frame(10, 5)];
        for (i, f) in frames.iter().enumerate() {
            wal.append(f, i == 2).unwrap();
        }
        let seg = read_segment(&dir.join(segment_file_name(7, 2))).unwrap();
        assert_eq!(seg.shard, 2);
        assert_eq!(seg.start_seq, 7);
        assert!(!seg.torn);
        assert_eq!(seg.frames.len(), 3);
        for (a, b) in seg.frames.iter().zip(&frames) {
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.batch_n, b.batch_n);
            assert_eq!(a.items.len(), b.items.len());
            for (x, y) in a.items.iter().zip(&b.items) {
                assert_eq!(x.key, y.key);
                assert_eq!((x.idx, x.t), (y.idx, y.t));
                assert_eq!(x.value.to_bits(), y.value.to_bits(), "bit-identical floats");
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_detected_at_every_cut() {
        let dir = tmp_dir("torn");
        let path = dir.join(segment_file_name(0, 0));
        let mut wal = Wal::create(&dir, 0, 0).unwrap();
        wal.append(&frame(1, 2), false).unwrap();
        wal.append(&frame(2, 2), true).unwrap();
        drop(wal);
        let full = fs::read(&path).unwrap();
        let seg = read_segment(&path).unwrap();
        assert_eq!((seg.frames.len(), seg.torn), (2, false));
        let first_end = seg.frame_ends[0] as usize;
        // cut anywhere inside the second record: exactly the first survives
        for cut in (first_end + 1)..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let seg = read_segment(&path).unwrap();
            assert!(seg.torn, "cut at {cut} must read as torn");
            assert_eq!(seg.frames.len(), 1, "cut at {cut}");
            assert_eq!(seg.frames[0].seq, 1);
        }
        // corrupt one payload byte of the final record: CRC catches it
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        let seg = read_segment(&path).unwrap();
        assert!(seg.torn);
        assert_eq!(seg.frames.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_invalid_segments() {
        let dir = tmp_dir("empty");
        let path = dir.join(segment_file_name(5, 1));
        drop(Wal::create(&dir, 1, 5).unwrap());
        let seg = read_segment(&path).unwrap();
        assert!(seg.frames.is_empty() && !seg.torn, "header-only segment is valid and empty");
        fs::write(&path, b"not a wal at all").unwrap();
        assert!(read_segment(&path).is_err(), "bad magic is an error, not a torn tail");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_one_fsync_covers_the_fanout() {
        let dir = tmp_dir("group");
        let wal = std::sync::Arc::new(GroupWal::create(&dir, 0).unwrap());
        // two appenders of the same batch (fanout 2): the second arrival
        // performs the single fsync; the first waits and is released
        let w2 = std::sync::Arc::clone(&wal);
        let waiter = std::thread::spawn(move || w2.append(&frame(1, 2), 2, true));
        // give the waiter a moment to land its append and block
        std::thread::sleep(std::time::Duration::from_millis(20));
        wal.append(&frame(1, 2), 2, true).unwrap();
        waiter.join().unwrap().unwrap();
        assert_eq!(wal.fsync_count(), 1, "one flush covered both appends");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poison_releases_group_commit_waiters() {
        let dir = tmp_dir("poison");
        let wal = std::sync::Arc::new(GroupWal::create(&dir, 0).unwrap());
        // an appender of a fanout-2 batch whose partner never arrives
        // (worker death): poisoning must wake it with an error instead of
        // leaving it blocked forever
        let w2 = std::sync::Arc::clone(&wal);
        let waiter = std::thread::spawn(move || w2.append(&frame(1, 3), 2, true));
        std::thread::sleep(std::time::Duration::from_millis(20));
        wal.poison("test: partner worker died");
        let err = waiter.join().unwrap().unwrap_err();
        assert!(err.to_string().contains("partner worker died"), "{err}");
        // and the log stays unusable afterwards
        assert!(wal.append(&frame(2, 1), 1, false).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_starts_a_fresh_segment() {
        let dir = tmp_dir("rotate");
        let mut wal = Wal::create(&dir, 0, 0).unwrap();
        wal.append(&frame(1, 1), false).unwrap();
        wal.rotate(1).unwrap();
        assert_eq!(wal.start_seq(), 1);
        wal.append(&frame(2, 1), true).unwrap();
        let old = read_segment(&dir.join(segment_file_name(0, 0))).unwrap();
        let new = read_segment(&dir.join(segment_file_name(1, 0))).unwrap();
        assert_eq!(old.frames.len(), 1);
        assert_eq!(old.frames[0].seq, 1);
        assert_eq!(new.frames.len(), 1);
        assert_eq!(new.frames[0].seq, 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
