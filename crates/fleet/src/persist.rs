//! Durable persistence: snapshot-to-disk (full bases + incremental
//! deltas), WAL lifecycle, crash recovery.
//!
//! [`DurableFleet`] wraps a [`FleetEngine`] and a directory:
//!
//! ```text
//! dir/
//!   snap-00000000000000000000.fsnap    full engine image at batch seq 0
//!   delta-00000000000000004096.fdelta  dirty series since seq 0
//!   delta-00000000000000008192.fdelta  dirty series since seq 4096
//!   snap-00000000000000065536.fsnap    periodic full-base rewrite
//!   wal-00000000000000065536-0000.flog shared log of batches 65537…
//!   cold/cold-0000.fcold               per-shard cold tier (spill_after)
//! ```
//!
//! Every ingested batch is appended to the shared WAL *before* it is
//! applied ([`crate::wal`], group-commit flushed). Every
//! [`DurabilityConfig::snapshot_every`] batches the engine state is
//! collected (fast, in-memory) and handed to a background writer thread
//! that encodes it, writes a temp file, fsyncs, and atomically renames it
//! into place — ingest never waits on snapshot I/O. The cadence normally
//! collects an **incremental delta** — only the series dirty since the
//! previous image, plus tombstones of evicted ones — so a mostly idle
//! fleet writes a small fraction of its state per interval; every
//! [`DurabilityConfig::max_delta_chain`] deltas (and on every forced
//! [`DurableFleet::checkpoint`]) a full base is rewritten, bounding both
//! chain length and recovery fan-in. When an image is confirmed durable,
//! WAL segments it covers and bases/deltas beyond
//! [`DurabilityConfig::keep_snapshots`] are deleted — and a kept segment
//! whose whole batch range is already re-derivable from the
//! snapshot/delta chain of every surviving base below it is compacted
//! away, so the WAL footprint tracks the un-imaged tail instead of the
//! retention window.
//!
//! ## Recovery
//!
//! [`DurableFleet::open`] walks the directory newest-base-first, skipping
//! bases that fail CRC/decode (torn writes, version mismatches), then
//! folds the chain of deltas anchored at the chosen base (each delta
//! names the image it chains onto; the walk stops at the first gap or
//! corrupt link — the WAL covers whatever the chain cannot). The folded
//! image restores an engine, then the original ingest batches are
//! reassembled from the WAL segments and replayed through the normal
//! ingest path. Replay stops at the first batch that is incomplete on
//! disk (a torn tail or a frame lost to a crash); the on-disk logs are
//! truncated to that point so the durable state is always a *prefix* of
//! the ingest history. Because folding is exact and replay reuses the
//! ingest path byte-for-byte, the recovered engine is **bit-identical**
//! to an uninterrupted engine fed the same prefix — the disk-level
//! extension of the in-memory guarantee pinned by
//! `tests/fleet_snapshot.rs`.
//!
//! ## What survives a crash
//!
//! - Process crash (panic, `kill -9`): every batch whose `ingest`/
//!   [`DurableFleet::next_batch`] call returned, minus nothing — appends
//!   hit the file before the reply, and the page cache survives the
//!   process.
//! - OS/power crash: everything up to the last `fsync` boundary — at most
//!   [`DurabilityConfig::fsync_every`] − 1 un-fsynced appends per shard
//!   (plus a possibly torn final record), and from the first lost frame
//!   onward the prefix rule discards the rest of the tail. The default
//!   `fsync_every = 1` makes every acknowledged batch durable.
//! - Explicit [`FleetEngine::evict_idle`] calls between snapshots are
//!   *not* logged; use [`DurableFleet::evict_idle`], which checkpoints
//!   after evicting, or rely on the TTL sweep, which replay reproduces
//!   deterministically.
//!
//! ## Degraded mode
//!
//! Under the default [`DurabilityPolicy::CrashStop`], the first WAL or
//! snapshot I/O error poisons the fleet: the failing call returns
//! [`FleetError::Io`] and the contract is "recover from disk". Under
//! [`DurabilityPolicy::Degrade`] the fleet keeps **serving** instead:
//! batches are applied un-durably (counted in
//! [`crate::FleetStats::undurable_batches`]), snapshot cadence pauses,
//! and every ingest first checks whether the capped-exponential retry
//! clock ([`DurabilityConfig::wal_retry_backoff`] doubling up to
//! [`DurabilityConfig::wal_retry_cap`]) has expired — if so it re-arms:
//! a fresh WAL generation at the current batch seq, then an immediate
//! full base snapshot that makes the un-durable window recoverable
//! again. Until the re-arm succeeds, a crash loses the window — that is
//! the availability-over-durability trade the policy opts into.
//!
//! ## One process at a time
//!
//! A durability directory must be owned by exactly one live
//! [`DurableFleet`]: there is no lock file (a stale lock would block the
//! crash recovery this module exists for), so a second concurrent
//! `open`/`create` on the same directory would truncate the first one's
//! live WAL segments. Orchestrate exclusivity externally.

use crate::codec;
use crate::config::FleetConfig;
use crate::engine::{FleetDelta, FleetEngine, FleetSnapshot};
use crate::error::FleetError;
use crate::fault;
use crate::types::{Record, ScoredPoint, SeriesKey};
use crate::wal::{self, crc32, GroupWal, WalSegment};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a WAL or snapshot I/O failure does to a [`DurableFleet`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// Fail fast (the default): the first I/O error poisons the fleet,
    /// the failing call returns [`FleetError::Io`], and the operator
    /// recovers from disk. Every acknowledged batch is durable.
    #[default]
    CrashStop,
    /// Keep serving: batches apply un-durably while the WAL is retried
    /// with capped exponential backoff; on success durability re-arms
    /// (fresh WAL generation + immediate full snapshot). The un-durable
    /// window is surfaced via [`crate::FleetStats::undurable_batches`]
    /// and [`DurableFleet::degraded`].
    Degrade,
}

/// Configuration of the durability layer (directory + cadences).
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityConfig {
    /// Directory holding the snapshots and WAL segments of one fleet.
    pub dir: PathBuf,
    /// Group-flush the shared WAL every this many batches (1 = every
    /// batch, the safest and the default; one flush covers the whole
    /// batch no matter how many shards it touched). Larger intervals
    /// trade fewer disk flushes for an OS-crash window: up to
    /// `fsync_every − 1` un-fsynced batches, and — because recovery keeps
    /// only the longest complete batch prefix — every batch from the
    /// first lost frame onward.
    pub fsync_every: u64,
    /// Trigger a background snapshot every this many batches. Snapshots
    /// bound WAL growth and recovery time; between them, recovery cost is
    /// one WAL replay of at most this many batches.
    pub snapshot_every: u64,
    /// How many durable **full** snapshots to retain (≥ 1). Older bases —
    /// the deltas chained below them, and the WAL segments only they
    /// need — are deleted once a newer image is confirmed on disk.
    pub keep_snapshots: usize,
    /// How many consecutive incremental deltas may chain onto a base
    /// before the cadence rewrites a full base (0 disables deltas: every
    /// cadence snapshot is full). Bounds both recovery fan-in and the
    /// disk an unprunable chain pins.
    pub max_delta_chain: usize,
    /// What a WAL or snapshot I/O failure does: fail fast
    /// ([`DurabilityPolicy::CrashStop`], the default) or keep serving
    /// un-durably while retrying ([`DurabilityPolicy::Degrade`]).
    pub policy: DurabilityPolicy,
    /// First retry delay after durability degrades; doubles per failed
    /// re-arm attempt (capped at [`DurabilityConfig::wal_retry_cap`]).
    /// Only meaningful under [`DurabilityPolicy::Degrade`].
    pub wal_retry_backoff: Duration,
    /// Ceiling on the exponential re-arm backoff.
    pub wal_retry_cap: Duration,
}

impl DurabilityConfig {
    /// Defaults: fsync every batch, snapshot every 4096 batches, keep the
    /// last 2 full snapshots, rewrite a full base every 16 deltas,
    /// crash-stop on I/O errors (retry backoff 50 ms doubling to 5 s when
    /// switched to [`DurabilityPolicy::Degrade`]).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync_every: 1,
            snapshot_every: 4096,
            keep_snapshots: 2,
            max_delta_chain: 16,
            policy: DurabilityPolicy::CrashStop,
            wal_retry_backoff: Duration::from_millis(50),
            wal_retry_cap: Duration::from_secs(5),
        }
    }

    fn validate(&self) -> Result<(), FleetError> {
        if self.fsync_every == 0 {
            return Err(FleetError::Config("fsync_every must be >= 1".into()));
        }
        if self.snapshot_every == 0 {
            return Err(FleetError::Config("snapshot_every must be >= 1".into()));
        }
        if self.keep_snapshots == 0 {
            return Err(FleetError::Config("keep_snapshots must be >= 1".into()));
        }
        if self.wal_retry_cap < self.wal_retry_backoff {
            return Err(FleetError::Config(
                "wal_retry_cap must be >= wal_retry_backoff".into(),
            ));
        }
        Ok(())
    }
}

/// What a snapshot job writes: a full base or an incremental delta.
enum SnapshotPayload {
    Full(FleetSnapshot),
    Delta(FleetDelta),
}

/// A snapshot handed to the background writer thread. `id` is a
/// monotonically increasing job counter — distinct from `seq`, because a
/// forced checkpoint can legitimately re-write the snapshot of a seq that
/// was already written (state mutated without a batch, e.g. an explicit
/// eviction), and waiting on `seq` alone would not wait for the re-write.
struct SnapshotJob {
    id: u64,
    seq: u64,
    payload: SnapshotPayload,
}

/// A [`FleetEngine`] with durable persistence: WAL on ingest, periodic
/// background snapshots, crash recovery via [`DurableFleet::open`]. See
/// the module docs for the lifecycle.
pub struct DurableFleet {
    engine: FleetEngine,
    dcfg: DurabilityConfig,
    job_tx: Option<Sender<SnapshotJob>>,
    done_rx: Receiver<(u64, u64, Result<(), String>)>,
    writer: Option<JoinHandle<()>>,
    /// Batch seq of the newest *triggered* snapshot (cadence anchor; also
    /// the image the next delta chains onto).
    last_snapshot: u64,
    /// Batch seq of the newest snapshot *confirmed* on disk.
    durable_snapshot: u64,
    /// Consecutive deltas since the last full base was triggered.
    chain_len: usize,
    /// Id handed to the next snapshot job.
    next_job: u64,
    /// Highest job id acknowledged by the writer.
    acked_job: u64,
    /// `Some` while durability is degraded ([`DurabilityPolicy::Degrade`]
    /// only): the fleet serves un-durably and re-arms on the retry clock.
    degraded: Option<Degraded>,
}

/// Retry bookkeeping while durability is degraded.
struct Degraded {
    /// Failed re-arm attempts so far (drives the exponential backoff).
    attempts: u32,
    /// Earliest instant the next re-arm may run.
    next_retry: Instant,
}

impl DurableFleet {
    /// Starts a fresh durable fleet in `dcfg.dir` (created if missing,
    /// must not already contain fleet files). Writes a base snapshot at
    /// seq 0 synchronously, so the directory is recoverable from the very
    /// first batch.
    pub fn create(config: FleetConfig, dcfg: DurabilityConfig) -> Result<Self, FleetError> {
        dcfg.validate()?;
        fs::create_dir_all(&dcfg.dir).map_err(io_err)?;
        remove_stale_tmp(&dcfg.dir)?;
        let existing = scan_dir(&dcfg.dir)?;
        if !existing.snapshots.is_empty()
            || !existing.deltas.is_empty()
            || !existing.segments.is_empty()
        {
            // deltas count too: a stale delta from a previous fleet life
            // could chain onto the new fleet's base (prev_batches can
            // collide across lives) and corrupt a later recovery silently
            return Err(FleetError::Recovery(format!(
                "{} already contains fleet files; use DurableFleet::open",
                dcfg.dir.display()
            )));
        }
        let mut engine = FleetEngine::new(config)?;
        attach_cold_tier(&mut engine, &dcfg)?;
        let base = engine.snapshot()?;
        write_snapshot_file(&dcfg.dir, 0, &base).map_err(io_err)?;
        Self::attach(engine, dcfg, 0, 0, 0)
    }

    /// Recovers a durable fleet from `dcfg.dir`: newest valid base
    /// snapshot + delta-chain folding + WAL tail replay + torn-tail
    /// truncation. The recovered engine's [`FleetEngine::batches`] is the
    /// number of batches that survived.
    pub fn open(dcfg: DurabilityConfig) -> Result<Self, FleetError> {
        dcfg.validate()?;
        // writes a previous life's crash interrupted before their rename
        remove_stale_tmp(&dcfg.dir)?;
        let listing = scan_dir(&dcfg.dir)?;
        // newest base that actually decodes wins; torn writes and version
        // mismatches are skipped, falling back to an older image
        let mut base: Option<FleetSnapshot> = None;
        for (seq, path) in listing.snapshots.iter().rev() {
            match load_snapshot_file(path) {
                Ok(snap) if snap.batches == *seq => {
                    base = Some(snap);
                    break;
                }
                _ => continue,
            }
        }
        let Some(mut base) = base else {
            return Err(FleetError::Recovery(format!(
                "no valid snapshot in {}",
                dcfg.dir.display()
            )));
        };
        // the chosen base anchors garbage collection: segments before it
        // serve no possible recovery, but segments *between* it and the
        // folded chain tip stay — they are the fallback if a delta file
        // ever goes bad
        let anchor_seq = base.batches;
        // fold the delta chain anchored at the chosen base: each delta
        // names its predecessor image; walk forward until the chain gaps
        // (a missing/corrupt/unchained delta — the WAL replay below covers
        // whatever the chain cannot)
        let mut by_prev: BTreeMap<u64, FleetDelta> = BTreeMap::new();
        for (seq, path) in &listing.deltas {
            if *seq <= base.batches {
                continue; // superseded by the base itself
            }
            if let Ok(delta) = load_delta_file(path) {
                if delta.batches == *seq && delta.prev_batches < delta.batches {
                    // on a (corruption-induced) prev collision the higher
                    // seq wins: ascending iteration makes that the last
                    // insert, and a wrong pick only shortens the chain —
                    // WAL replay restores the difference
                    by_prev.insert(delta.prev_batches, delta);
                }
            }
        }
        let mut chain_len = 0usize;
        while let Some(delta) = by_prev.remove(&base.batches) {
            delta.fold_into(&mut base)?;
            chain_len += 1;
        }
        let base_seq = base.batches;
        let mut engine = FleetEngine::restore(base)?;
        // re-attach the cold tier *before* WAL replay: replayed batches
        // must spill and rehydrate through the same on-disk store the
        // uninterrupted engine used, or recovery would diverge from the
        // prefix rule for series that crossed the hot/cold boundary
        attach_cold_tier(&mut engine, &dcfg)?;

        // gather every frame from segments at or after the anchor base;
        // stale pre-base segments are garbage a crash kept alive
        let mut read_segments: Vec<(PathBuf, WalSegment)> = Vec::new();
        for (start, files) in &listing.segments {
            for (_, path) in files {
                if *start < anchor_seq {
                    let _ = fs::remove_file(path);
                    continue;
                }
                // a segment with an unreadable header contributes nothing;
                // completeness checks below stop replay at the first batch
                // it should have covered
                if let Ok(seg) = wal::read_segment(path) {
                    read_segments.push((path.clone(), seg));
                }
            }
        }
        let mut batches: BTreeMap<u64, (u32, Vec<crate::wal::WalItem>)> = BTreeMap::new();
        for (_, seg) in &mut read_segments {
            for frame in &mut seg.frames {
                if frame.seq <= base_seq {
                    continue;
                }
                let entry = batches.entry(frame.seq).or_insert((frame.batch_n, Vec::new()));
                if entry.0 != frame.batch_n {
                    // conflicting sizes: treat the batch as incomplete by
                    // poisoning the count so replay stops there
                    entry.0 = u32::MAX;
                    continue;
                }
                // move, don't clone: the truncation pass below only needs
                // each frame's seq and end offset, and taking the items
                // keeps recovery's peak memory at ~1x the WAL tail
                entry.1.append(&mut frame.items);
            }
        }

        // replay the longest complete prefix through the normal ingest
        // path (WAL not attached yet, so nothing is re-logged)
        let mut next = base_seq + 1;
        while let Some((batch_n, items)) = batches.remove(&next) {
            if items.len() as u32 != batch_n {
                break; // a shard's frame is missing: torn tail
            }
            let mut items = items;
            items.sort_by_key(|it| it.idx);
            if items.iter().enumerate().any(|(i, it)| it.idx as usize != i) {
                break; // duplicate or gapped indices: corrupt tail
            }
            let batch: Vec<Record> =
                items.into_iter().map(|it| Record::new(it.key, it.t, it.value)).collect();
            engine.ingest(batch)?;
            next += 1;
        }
        let recovered = engine.batches();
        debug_assert_eq!(recovered, next - 1);

        // truncate every surviving segment to its last frame ≤ recovered
        // and drop segments wholly beyond it, so a future recovery can
        // never resurrect (or double-apply) the discarded tail
        for (path, seg) in &read_segments {
            if seg.start_seq > recovered {
                let _ = fs::remove_file(path);
                continue;
            }
            let keep = seg
                .frames
                .iter()
                .zip(&seg.frame_ends)
                .filter(|(f, _)| f.seq <= recovered)
                .map(|(_, end)| *end)
                .next_back()
                .unwrap_or(wal::HEADER_LEN);
            let file = OpenOptions::new().write(true).open(path).map_err(io_err)?;
            let len = file.metadata().map_err(io_err)?.len();
            if len > keep {
                file.set_len(keep).map_err(io_err)?;
                file.sync_data().map_err(io_err)?;
            }
        }

        Self::attach(engine, dcfg, recovered, base_seq, chain_len)
    }

    /// Shared tail of `create`/`open`: fresh WAL generation at `wal_start`,
    /// background writer thread, bookkeeping.
    fn attach(
        mut engine: FleetEngine,
        dcfg: DurabilityConfig,
        wal_start: u64,
        snapshot_seq: u64,
        chain_len: usize,
    ) -> Result<Self, FleetError> {
        let wal = Arc::new(GroupWal::create(&dcfg.dir, wal_start).map_err(io_err)?);
        let degrade = dcfg.policy == DurabilityPolicy::Degrade;
        engine.attach_wal(wal, dcfg.fsync_every, degrade)?;
        let (job_tx, job_rx) = channel::<SnapshotJob>();
        let (done_tx, done_rx) = channel();
        let dir = dcfg.dir.clone();
        let writer = std::thread::Builder::new()
            .name("fleet-snapshot-writer".into())
            .spawn(move || run_writer(dir, job_rx, done_tx))
            .expect("spawning the snapshot writer thread");
        Ok(DurableFleet {
            engine,
            dcfg,
            job_tx: Some(job_tx),
            done_rx,
            writer: Some(writer),
            last_snapshot: snapshot_seq,
            durable_snapshot: snapshot_seq,
            chain_len,
            next_job: 1,
            acked_job: 0,
            degraded: None,
        })
    }

    /// The wrapped engine, for reads: [`FleetEngine::stats`],
    /// [`FleetEngine::forecast`], [`FleetEngine::clock`], …
    pub fn engine(&self) -> &FleetEngine {
        &self.engine
    }

    /// The wrapped engine, mutably — test/chaos-drill support (e.g.
    /// [`FleetEngine::crash_shard`]). Mutating engine state behind the
    /// durability layer's back voids the recovery guarantees.
    #[doc(hidden)]
    pub fn engine_mut(&mut self) -> &mut FleetEngine {
        &mut self.engine
    }

    /// `true` while durability is degraded: batches apply un-durably and
    /// the fleet is waiting out the re-arm backoff. Always `false` under
    /// [`DurabilityPolicy::CrashStop`].
    pub fn degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// Synchronous durable ingest: the batch is WAL-appended on every
    /// shard it touches before any output is produced. Also services the
    /// snapshot cadence.
    pub fn ingest(&mut self, batch: Vec<Record>) -> Result<Vec<ScoredPoint>, FleetError> {
        self.poll_writer()?;
        self.heal()?;
        let out = self.engine.ingest(batch)?;
        self.detect_degraded();
        if self.degraded.is_some() {
            self.engine.note_undurable_batch();
        } else {
            self.maybe_snapshot()?;
        }
        Ok(out)
    }

    /// Convenience single-record durable ingest.
    pub fn ingest_one(
        &mut self,
        key: impl Into<SeriesKey>,
        t: u64,
        value: f64,
    ) -> Result<ScoredPoint, FleetError> {
        let mut out = self.ingest(vec![Record::new(key, t, value)])?;
        out.pop().ok_or(FleetError::Internal("one record in, one point out"))
    }

    /// Pipelined durable submission (see [`FleetEngine::submit`]).
    pub fn submit(&mut self, batch: Vec<Record>) -> Result<(), FleetError> {
        self.poll_writer()?;
        self.heal()?;
        self.engine.submit(batch)?;
        self.detect_degraded();
        if self.degraded.is_none() {
            self.maybe_snapshot()?;
        }
        Ok(())
    }

    /// Collects the oldest in-flight batch (see
    /// [`FleetEngine::next_batch`]). Batches collected while durability
    /// is degraded count as un-durable (conservatively: a batch applied
    /// just before the WAL poisoned may land in the unsynced tail).
    pub fn next_batch(&mut self) -> Result<Option<Vec<ScoredPoint>>, FleetError> {
        let out = self.engine.next_batch()?;
        self.detect_degraded();
        if out.is_some() && self.degraded.is_some() {
            self.engine.note_undurable_batch();
        }
        Ok(out)
    }

    /// Under [`DurabilityPolicy::Degrade`], flips into degraded mode when
    /// the shared WAL has poisoned — appends fail, so shard workers apply
    /// batches un-durably instead of crash-stopping.
    fn detect_degraded(&mut self) {
        if self.dcfg.policy == DurabilityPolicy::Degrade
            && self.degraded.is_none()
            && self.engine.wal_poisoned().is_some()
        {
            self.enter_degraded();
        }
    }

    fn enter_degraded(&mut self) {
        if self.degraded.is_none() {
            // next_retry = now: the very next ingest attempts a re-arm
            self.degraded = Some(Degraded { attempts: 0, next_retry: Instant::now() });
        }
    }

    /// Attempts a re-arm when degraded and the backoff clock has expired.
    fn heal(&mut self) -> Result<(), FleetError> {
        let Some(d) = &self.degraded else { return Ok(()) };
        if Instant::now() < d.next_retry {
            return Ok(());
        }
        let attempts = d.attempts;
        self.engine.note_wal_retry();
        match self.rearm_once() {
            Ok(()) if self.degraded.is_none() => Ok(()),
            // the attempt failed (or the checkpoint inside it re-degraded):
            // stay degraded and back off exponentially, capped
            _ => {
                self.schedule_retry(attempts);
                Ok(())
            }
        }
    }

    /// One re-arm attempt: a fresh WAL generation at the current batch
    /// seq, then an immediate full base snapshot so the un-durable window
    /// becomes recoverable again.
    fn rearm_once(&mut self) -> Result<(), FleetError> {
        let wal =
            Arc::new(GroupWal::create(&self.dcfg.dir, self.engine.batches()).map_err(io_err)?);
        self.engine.attach_wal(wal, self.dcfg.fsync_every, true)?;
        // appends work again; clear the flag before checkpointing (the
        // checkpoint guard refuses while degraded) — a failed write below
        // re-enters via handle_ack
        self.degraded = None;
        self.checkpoint()
    }

    fn schedule_retry(&mut self, prior_attempts: u32) {
        let delay = self
            .dcfg
            .wal_retry_backoff
            .saturating_mul(1u32 << prior_attempts.min(16))
            .min(self.dcfg.wal_retry_cap);
        self.degraded = Some(Degraded {
            attempts: prior_attempts.saturating_add(1),
            next_retry: Instant::now() + delay,
        });
    }

    /// Registers per-series admission overrides like
    /// [`FleetEngine::set_admit_options`], then checkpoints: override
    /// registration is not WAL-logged (the WAL carries raw points only),
    /// so making it durable immediately keeps recovery deterministic —
    /// the checkpointed image carries the pending overrides (codec v4)
    /// and the replayed WAL tail admits the series with the same tuning
    /// the uninterrupted engine used.
    ///
    /// Cost note: a forced checkpoint writes a **full** base snapshot
    /// synchronously, so registering many series one call at a time on a
    /// large live fleet is `O(calls × fleet size)` I/O. Register overrides
    /// up front (fleet still small) when possible.
    ///
    /// Error note: on `Err` the registration may have been applied
    /// in-memory without becoming durable. As with any
    /// [`FleetError::Io`], treat the fleet as poisoned and recover from
    /// disk — continuing to ingest would let pre-crash outputs diverge
    /// from what recovery (which discards the non-durable registration)
    /// reproduces. The same contract covers [`DurableFleet::evict_idle`].
    pub fn set_admit_options(
        &mut self,
        key: impl Into<SeriesKey>,
        opts: crate::config::AdmitOptions,
    ) -> Result<(), FleetError> {
        self.engine.set_admit_options(key, opts)?;
        self.checkpoint()
    }

    /// Evicts idle series like [`FleetEngine::evict_idle`], then
    /// checkpoints: explicit evictions are not WAL-logged, so making them
    /// durable immediately keeps recovery deterministic.
    pub fn evict_idle(&mut self, now: u64) -> Result<usize, FleetError> {
        let evicted = self.engine.evict_idle(now)?;
        if evicted > 0 {
            self.checkpoint()?;
        }
        Ok(evicted)
    }

    /// Takes a snapshot now and blocks until it is durable on disk, then
    /// prunes superseded WAL segments and old snapshots. Forced: even a
    /// state change without a new batch (an explicit eviction) is
    /// re-snapshotted under the same seq.
    pub fn checkpoint(&mut self) -> Result<(), FleetError> {
        if self.degraded.is_some() {
            return Err(FleetError::Io(
                "durability degraded: WAL re-arm pending, checkpoint unavailable".into(),
            ));
        }
        let job = self.trigger_snapshot(true)?;
        while self.acked_job < job {
            match self.done_rx.recv() {
                Err(_) => {
                    return Err(FleetError::Io("snapshot writer thread died".into()));
                }
                Ok(ack) => self.handle_ack(ack)?,
            }
        }
        Ok(())
    }

    /// Clean shutdown: collect any in-flight batches (their outputs are
    /// discarded — collect them with [`DurableFleet::next_batch`] first if
    /// they matter), checkpoint, and stop the writer thread. After `close`
    /// returns, recovery needs zero WAL replay.
    pub fn close(mut self) -> Result<(), FleetError> {
        while self.next_batch()?.is_some() {}
        if self.degraded.is_none() {
            self.checkpoint()?;
            self.engine.sync_wal()?;
        }
        // degraded: the checkpoint and sync would only fail again — close
        // what we can; the un-durable window is lost, as documented
        // dropping the job sender ends the writer loop
        self.job_tx = None;
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
        Ok(())
    }

    /// Batch seq of the newest snapshot confirmed durable on disk.
    pub fn durable_snapshot(&self) -> u64 {
        self.durable_snapshot
    }

    fn maybe_snapshot(&mut self) -> Result<(), FleetError> {
        if self.engine.batches() - self.last_snapshot >= self.dcfg.snapshot_every {
            self.trigger_snapshot(false)?;
        }
        Ok(())
    }

    /// Collects the engine state (in-memory, fast), rotates the WAL, and
    /// queues the disk write on the background thread. Returns the id of
    /// the job that will write it (or of the last job, when not `force`
    /// and no batch arrived since the previous trigger).
    ///
    /// The cadence normally collects an incremental delta (dirty series
    /// only, chained onto the previous image); a forced checkpoint, or a
    /// chain reaching [`DurabilityConfig::max_delta_chain`], collects a
    /// full base instead.
    fn trigger_snapshot(&mut self, force: bool) -> Result<u64, FleetError> {
        let seq = self.engine.batches();
        if seq == self.last_snapshot && !force {
            return Ok(self.next_job - 1); // nothing new since the last trigger
        }
        let full = force
            || self.dcfg.max_delta_chain == 0
            || self.chain_len >= self.dcfg.max_delta_chain;
        let payload = if full {
            let snapshot = self.engine.snapshot()?;
            self.chain_len = 0;
            SnapshotPayload::Full(snapshot)
        } else {
            let delta = self.engine.snapshot_delta()?;
            debug_assert_eq!(delta.prev_batches, self.last_snapshot, "delta chain anchor");
            self.chain_len += 1;
            SnapshotPayload::Delta(delta)
        };
        // rotate after collecting: batches ingested while the image is
        // being written land in segments the image does not cover (a no-op
        // re-rotation when forced at an unchanged seq)
        self.engine.rotate_wal(seq)?;
        self.last_snapshot = seq;
        let id = self.next_job;
        self.next_job += 1;
        self.job_tx
            .as_ref()
            .expect("writer alive while the fleet is open")
            .send(SnapshotJob { id, seq, payload })
            .map_err(|_| FleetError::Io("snapshot writer thread died".into()))?;
        Ok(id)
    }

    /// Drains writer acknowledgements without blocking.
    fn poll_writer(&mut self) -> Result<(), FleetError> {
        while let Ok(ack) = self.done_rx.try_recv() {
            self.handle_ack(ack)?;
        }
        Ok(())
    }

    fn handle_ack(
        &mut self,
        (id, seq, result): (u64, u64, Result<(), String>),
    ) -> Result<(), FleetError> {
        self.acked_job = self.acked_job.max(id);
        if let Err(e) = result {
            if self.dcfg.policy == DurabilityPolicy::Degrade {
                // a failed snapshot write degrades durability instead of
                // poisoning the fleet; the re-arm path re-snapshots
                self.enter_degraded();
                return Ok(());
            }
            return Err(FleetError::Io(e));
        }
        self.durable_snapshot = self.durable_snapshot.max(seq);
        self.prune()
    }

    /// Deletes full bases beyond `keep_snapshots`, the deltas chained at
    /// or below the oldest base kept, and WAL segments older than it —
    /// then compacts the survivors: a kept segment whose whole batch
    /// range is durable *and* re-derivable from the snapshot/delta chain
    /// of every kept base at or below it can serve no recovery, so its
    /// files are dropped too. Only runs after a durable ack, so the
    /// newest image always survives.
    fn prune(&self) -> Result<(), FleetError> {
        let listing = scan_dir(&self.dcfg.dir)?;
        let keep_from = {
            let seqs: Vec<u64> = listing.snapshots.iter().map(|(s, _)| *s).collect();
            let kept = seqs.len().saturating_sub(self.dcfg.keep_snapshots);
            seqs.get(kept).copied().unwrap_or(0)
        };
        for (seq, path) in &listing.snapshots {
            if *seq < keep_from {
                let _ = fs::remove_file(path);
            }
        }
        for (seq, path) in &listing.deltas {
            // a delta at the kept base's seq (or below) is superseded by
            // that base; newer ones may chain from any kept base
            if *seq <= keep_from {
                let _ = fs::remove_file(path);
            }
        }
        let mut kept_segments: Vec<(u64, &Vec<(usize, PathBuf)>)> = Vec::new();
        for (start, files) in &listing.segments {
            if *start < keep_from {
                for (_, path) in files {
                    let _ = fs::remove_file(path);
                }
            } else {
                kept_segments.push((*start, files));
            }
        }

        // Segment compaction. A segment starting at `s` holds the batches
        // in `(s, s_next]`, where `s_next` is the next rotation. Recovery
        // anchors at some kept base `b` and folds its delta chain to
        // `reach(b)` before touching the WAL, so the segment is dead iff
        // for *every* kept base `b ≤ s` (any of them is a fallback anchor
        // if newer images turn out corrupt) the chain already reaches
        // `s_next` — and the range is confirmed durable. The newest
        // segment is the live one and never a candidate.
        let bases: Vec<u64> =
            listing.snapshots.iter().map(|(s, _)| *s).filter(|s| *s >= keep_from).collect();
        if bases.is_empty() || kept_segments.len() < 2 {
            return Ok(());
        }
        // delta links of the kept chain: image seq → the image chained on
        // it (header-only decode; a corrupt delta just contributes no
        // link, which conservatively keeps segments)
        let mut links: BTreeMap<u64, u64> = BTreeMap::new();
        for (seq, path) in &listing.deltas {
            if *seq <= keep_from {
                continue;
            }
            let Ok(raw) = load_blob_file(path) else { continue };
            if let Ok((prev, batches)) = codec::decode_delta_chain(&raw[12..]) {
                if batches == *seq && prev < batches {
                    links.insert(prev, batches);
                }
            }
        }
        // `prev < batches` above makes every link strictly increasing, so
        // this walk terminates
        let reach = |b: u64| {
            let mut r = b;
            while let Some(next) = links.get(&r) {
                r = *next;
            }
            r
        };
        for w in kept_segments.windows(2) {
            let (start, files) = (w[0].0, w[0].1);
            let next_start = w[1].0;
            if next_start > self.durable_snapshot {
                continue;
            }
            let mut anchors = bases.iter().copied().filter(|b| *b <= start).peekable();
            if anchors.peek().is_none() {
                continue;
            }
            if anchors.any(|b| reach(b) < next_start) {
                continue; // some fallback anchor still needs this tail
            }
            for (_, path) in files {
                let _ = fs::remove_file(path);
            }
        }
        Ok(())
    }

    /// Lifetime count of `fsync`s issued on the shared WAL — the
    /// group-commit gauge: at most one per acked batch.
    pub fn wal_fsync_count(&self) -> u64 {
        self.engine.wal_fsync_count()
    }
}

impl Drop for DurableFleet {
    fn drop(&mut self) {
        // no checkpoint and no fsync here on purpose: dropping without
        // close() is the crash path (tests rely on it), and already-queued
        // snapshot jobs still complete below
        self.job_tx = None;
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

/// The background writer loop: encode → temp file → fsync → rename →
/// directory fsync → ack.
fn run_writer(
    dir: PathBuf,
    jobs: Receiver<SnapshotJob>,
    done: Sender<(u64, u64, Result<(), String>)>,
) {
    while let Ok(SnapshotJob { id, seq, payload }) = jobs.recv() {
        let result = match &payload {
            SnapshotPayload::Full(snapshot) => write_snapshot_file(&dir, seq, snapshot),
            SnapshotPayload::Delta(delta) => write_delta_file(&dir, seq, delta),
        }
        .map_err(|e| e.to_string());
        if done.send((id, seq, result)).is_err() {
            break;
        }
    }
}

/// Snapshot file name for batch seq — zero-padded so lexical order equals
/// numeric order.
pub fn snapshot_file_name(seq: u64) -> String {
    format!("snap-{seq:020}.fsnap")
}

/// Parses a [`snapshot_file_name`] back into its seq; `None` for other
/// files.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?.strip_suffix(".fsnap")?.parse().ok()
}

/// Delta file name for batch seq — zero-padded like snapshots.
pub fn delta_file_name(seq: u64) -> String {
    format!("delta-{seq:020}.fdelta")
}

/// Parses a [`delta_file_name`] back into its seq; `None` for other files.
pub fn parse_delta_name(name: &str) -> Option<u64> {
    name.strip_prefix("delta-")?.strip_suffix(".fdelta")?.parse().ok()
}

/// Writes `bytes` durably under `name`: `[u64 len · u32 crc32 · bytes]`
/// to a temp file, fsync, atomic rename, directory fsync.
fn write_blob_file(
    dir: &Path,
    tmp_name: &str,
    name: &str,
    bytes: &[u8],
) -> std::io::Result<()> {
    let tmp = dir.join(tmp_name);
    let path = dir.join(name);
    let mut f = fault::create_file(&tmp)?;
    fault::write_all(&mut f, &tmp, &(bytes.len() as u64).to_le_bytes())?;
    fault::write_all(&mut f, &tmp, &crc32(bytes).to_le_bytes())?;
    fault::write_all(&mut f, &tmp, bytes)?;
    fault::sync_all(&f, &tmp)?;
    drop(f);
    fault::rename(&tmp, &path)?;
    // make the rename itself durable
    fault::sync_dir(dir)?;
    Ok(())
}

/// Writes a full base snapshot durably (see [`write_blob_file`]).
fn write_snapshot_file(dir: &Path, seq: u64, snapshot: &FleetSnapshot) -> std::io::Result<()> {
    let name = snapshot_file_name(seq);
    write_blob_file(dir, &format!(".snap-{seq:020}.tmp"), &name, &codec::encode(snapshot))
}

/// Writes an incremental delta durably (see [`write_blob_file`]).
fn write_delta_file(dir: &Path, seq: u64, delta: &FleetDelta) -> std::io::Result<()> {
    let name = delta_file_name(seq);
    write_blob_file(dir, &format!(".snap-{seq:020}d.tmp"), &name, &codec::encode_delta(delta))
}

/// Reads and CRC-verifies a `[u64 len · u32 crc32 · bytes]` blob file,
/// returning the whole buffer (payload starts at offset 12 — no copy).
fn load_blob_file(path: &Path) -> Result<Vec<u8>, String> {
    let mut raw = Vec::new();
    File::open(path).and_then(|mut f| f.read_to_end(&mut raw)).map_err(|e| e.to_string())?;
    if raw.len() < 12 {
        return Err("snapshot file shorter than its header".into());
    }
    let len = u64::from_le_bytes(raw[..8].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(raw[8..12].try_into().unwrap());
    let bytes = &raw[12..];
    if bytes.len() != len {
        return Err("snapshot file length mismatch (torn write)".into());
    }
    if crc32(bytes) != crc {
        return Err("snapshot file CRC mismatch".into());
    }
    Ok(raw)
}

/// Reads and verifies a snapshot file written by [`write_snapshot_file`].
fn load_snapshot_file(path: &Path) -> Result<FleetSnapshot, String> {
    codec::decode(&load_blob_file(path)?[12..]).map_err(|e| e.to_string())
}

/// Reads and verifies a delta file written by [`write_delta_file`].
fn load_delta_file(path: &Path) -> Result<FleetDelta, String> {
    codec::decode_delta(&load_blob_file(path)?[12..]).map_err(|e| e.to_string())
}

/// What a durability directory currently holds, numerically sorted.
struct DirListing {
    /// `(seq, path)` per full snapshot file, ascending.
    snapshots: Vec<(u64, PathBuf)>,
    /// `(seq, path)` per delta file, ascending.
    deltas: Vec<(u64, PathBuf)>,
    /// `start_seq → [(shard, path)]` per WAL segment, ascending.
    segments: BTreeMap<u64, Vec<(usize, PathBuf)>>,
}

fn scan_dir(dir: &Path) -> Result<DirListing, FleetError> {
    let mut snapshots = Vec::new();
    let mut deltas = Vec::new();
    let mut segments: BTreeMap<u64, Vec<(usize, PathBuf)>> = BTreeMap::new();
    for entry in fs::read_dir(dir).map_err(io_err)? {
        let entry = entry.map_err(io_err)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let path = entry.path();
        if let Some(seq) = parse_snapshot_name(name) {
            snapshots.push((seq, path));
        } else if let Some(seq) = parse_delta_name(name) {
            deltas.push((seq, path));
        } else if let Some((start, shard)) = wal::parse_segment_name(name) {
            segments.entry(start).or_default().push((shard, path));
        }
    }
    snapshots.sort();
    deltas.sort();
    Ok(DirListing { snapshots, deltas, segments })
}

/// Deletes snapshot temp files a crash left behind. Only safe while no
/// writer thread is running — once one is, a `.tmp` may be mid-write, and
/// unlinking it would fail the writer's rename (so [`scan_dir`], which
/// also serves [`DurableFleet::prune`], must never do this).
fn remove_stale_tmp(dir: &Path) -> Result<(), FleetError> {
    for entry in fs::read_dir(dir).map_err(io_err)? {
        let entry = entry.map_err(io_err)?;
        if let Some(name) = entry.file_name().to_str() {
            if name.starts_with(".snap-") && name.ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
    Ok(())
}

/// Attaches the on-disk cold tier under `dir/cold` when the fleet config
/// opts into spilling. No-op otherwise: a fleet without
/// [`crate::FleetConfig::spill_after`] keeps every series hot and writes
/// no cold files.
fn attach_cold_tier(
    engine: &mut FleetEngine,
    dcfg: &DurabilityConfig,
) -> Result<(), FleetError> {
    if engine.config().spill_after.is_some() {
        engine.attach_cold_dir(dcfg.dir.join("cold"))?;
    }
    Ok(())
}

fn io_err(e: std::io::Error) -> FleetError {
    FleetError::Io(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_names_roundtrip_and_sort() {
        assert_eq!(parse_snapshot_name(&snapshot_file_name(77)), Some(77));
        assert_eq!(parse_snapshot_name("wal-00-0.flog"), None);
        assert!(snapshot_file_name(9) < snapshot_file_name(10));
    }

    #[test]
    fn durability_config_is_validated() {
        let ok = DurabilityConfig::new("/tmp/x");
        assert!(ok.validate().is_ok());
        assert!(DurabilityConfig { fsync_every: 0, ..ok.clone() }.validate().is_err());
        assert!(DurabilityConfig { snapshot_every: 0, ..ok.clone() }.validate().is_err());
        assert!(DurabilityConfig { keep_snapshots: 0, ..ok.clone() }.validate().is_err());
        assert!(
            DurabilityConfig { wal_retry_cap: Duration::ZERO, ..ok }.validate().is_err(),
            "cap below the base backoff is rejected"
        );
    }
}
