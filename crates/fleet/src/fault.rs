//! Injectable fault seam for the durability stack (and the per-series
//! update path).
//!
//! Every WAL and snapshot file operation in [`crate::wal`] /
//! [`crate::persist`] goes through the tiny wrappers in this module. In
//! normal operation they are pure passthroughs guarded by one relaxed
//! atomic load (no hook installed → no lookup, no allocation). A test —
//! or a chaos drill — can [`inject`] a hook that fails the Nth write,
//! returns `ENOSPC` on every fsync, delays a rename, or panics inside a
//! series update, which makes every error path of the durability code
//! exercisable deterministically:
//!
//! ```
//! use fleet::fault::{self, FaultOp};
//!
//! let dir = std::env::temp_dir().join(format!("fault-doc-{}", std::process::id()));
//! // fail the first fsync under `dir`; everything else passes through
//! let _guard = fault::inject(&dir, fault::fail_nth(FaultOp::Fsync, 0));
//! // ... run a DurableFleet rooted at `dir` and watch it degrade ...
//! ```
//!
//! Hooks are **scoped by path prefix**: a hook installed for directory
//! `d` only sees operations on paths under `d`, so parallel tests using
//! distinct directories cannot interfere. The guard returned by
//! [`inject`] removes the hook on drop; when the last hook is gone the
//! hot path is a single atomic load again.
//!
//! A hook may also *delay* (sleep before returning `None`) or *panic*
//! (`FaultOp::SeriesStep` hooks panic inside the per-series
//! `catch_unwind` boundary, driving the quarantine path).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Which instrumented operation a hook is being consulted about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Creating (or truncating) a file — WAL segment headers, snapshot
    /// temp files.
    Create,
    /// A buffered `write_all` — WAL records, snapshot payload bytes.
    Write,
    /// An `fsync` (`sync_data`/`sync_all`) on a file.
    Fsync,
    /// The atomic rename publishing a snapshot temp file.
    Rename,
    /// The directory fsync that makes a create/rename durable.
    DirSync,
    /// One series update inside a shard worker; the "path" is the series
    /// key. A hook that returns an error (or panics) here drives the
    /// quarantine path ([`crate::series::SeriesState`]).
    SeriesStep,
}

/// A fault hook: inspects `(op, path)` and returns `Some(error)` to fail
/// the operation, `None` to let it proceed. Sleeping before returning
/// models a slow device; panicking models a crashed update (only
/// meaningful for [`FaultOp::SeriesStep`], which runs under
/// `catch_unwind`).
pub type FaultHook = Arc<dyn Fn(FaultOp, &Path) -> Option<io::Error> + Send + Sync>;

/// Fast-path arm switch: no hook installed → one relaxed load and out.
static ARMED: AtomicBool = AtomicBool::new(false);

fn hooks() -> &'static Mutex<Vec<(PathBuf, FaultHook)>> {
    static HOOKS: OnceLock<Mutex<Vec<(PathBuf, FaultHook)>>> = OnceLock::new();
    HOOKS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Removes its hook on drop (and disarms the fast path when it was the
/// last one).
pub struct FaultGuard {
    scope: PathBuf,
    hook: FaultHook,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let mut g = hooks().lock().unwrap_or_else(|p| p.into_inner());
        if let Some(i) =
            g.iter().position(|(s, h)| *s == self.scope && Arc::ptr_eq(h, &self.hook))
        {
            g.remove(i);
        }
        if g.is_empty() {
            ARMED.store(false, Ordering::SeqCst);
        }
    }
}

/// Installs `hook` for every instrumented operation on paths under
/// `scope` (and for [`FaultOp::SeriesStep`] "paths", which are series
/// keys — scope those with the key text or an empty scope). Returns a
/// guard that uninstalls the hook on drop.
pub fn inject(scope: impl Into<PathBuf>, hook: FaultHook) -> FaultGuard {
    let scope = scope.into();
    let mut g = hooks().lock().unwrap_or_else(|p| p.into_inner());
    g.push((scope.clone(), Arc::clone(&hook)));
    ARMED.store(true, Ordering::SeqCst);
    FaultGuard { scope, hook }
}

/// Builds a hook that fails the `nth` (0-based) matching operation with
/// a generic injected-fault error, passing everything else through.
pub fn fail_nth(target: FaultOp, nth: u64) -> FaultHook {
    fail_range(target, nth, 1)
}

/// Builds a hook that fails matching operations `from .. from+count`
/// (0-based occurrence window), passing everything else through — the
/// shape of a transient outage that heals.
pub fn fail_range(target: FaultOp, from: u64, count: u64) -> FaultHook {
    let seen = AtomicU64::new(0);
    Arc::new(move |op, path| {
        if op != target {
            return None;
        }
        let i = seen.fetch_add(1, Ordering::SeqCst);
        (i >= from && i < from + count).then(|| {
            io::Error::other(format!("injected fault: {op:?} #{i} on {}", path.display()))
        })
    })
}

/// Builds a hook that fails **every** matching operation with `ENOSPC`
/// (disk full) — the canonical non-transient degradation.
pub fn enospc(target: FaultOp) -> FaultHook {
    Arc::new(move |op, _| {
        // raw ENOSPC (28 on every unix) keeps the error kind realistic
        // without depending on io_error_more stabilization
        (op == target).then(|| io::Error::from_raw_os_error(28))
    })
}

/// Consults the installed hooks for `(op, path)`. Passthrough (`Ok`)
/// when disarmed — the production fast path.
#[inline]
pub(crate) fn check(op: FaultOp, path: &Path) -> io::Result<()> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    check_slow(op, path)
}

#[cold]
fn check_slow(op: FaultOp, path: &Path) -> io::Result<()> {
    // collect matching hooks first: a hook may sleep or panic, and doing
    // that while holding the registry lock would wedge unrelated tests
    let matching: Vec<FaultHook> = {
        let g = hooks().lock().unwrap_or_else(|p| p.into_inner());
        g.iter()
            .filter(|(scope, _)| path.starts_with(scope))
            .map(|(_, h)| Arc::clone(h))
            .collect()
    };
    for hook in matching {
        if let Some(e) = hook(op, path) {
            return Err(e);
        }
    }
    Ok(())
}

/// Creates (or truncates) a file for writing, through the fault seam.
pub(crate) fn create_file(path: &Path) -> io::Result<std::fs::File> {
    check(FaultOp::Create, path)?;
    std::fs::OpenOptions::new().write(true).create(true).truncate(true).open(path)
}

/// `write_all` through the fault seam.
pub(crate) fn write_all(file: &mut std::fs::File, path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write as _;
    check(FaultOp::Write, path)?;
    file.write_all(bytes)
}

/// `sync_data` through the fault seam.
pub(crate) fn sync_data(file: &std::fs::File, path: &Path) -> io::Result<()> {
    check(FaultOp::Fsync, path)?;
    file.sync_data()
}

/// `sync_all` through the fault seam.
pub(crate) fn sync_all(file: &std::fs::File, path: &Path) -> io::Result<()> {
    check(FaultOp::Fsync, path)?;
    file.sync_all()
}

/// `fs::rename` through the fault seam (checked against the target).
pub(crate) fn rename(from: &Path, to: &Path) -> io::Result<()> {
    check(FaultOp::Rename, to)?;
    std::fs::rename(from, to)
}

/// Directory fsync (open + `sync_all`) through the fault seam.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    check(FaultOp::DirSync, dir)?;
    std::fs::File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_seam_is_a_passthrough() {
        let dir = std::env::temp_dir().join(format!("fault-pass-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("x");
        let mut f = create_file(&path).unwrap();
        write_all(&mut f, &path, b"hi").unwrap();
        sync_all(&f, &path).unwrap();
        sync_dir(&dir).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hi");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hooks_are_path_scoped_and_removed_on_drop() {
        let dir = std::env::temp_dir().join(format!("fault-scope-{}", std::process::id()));
        let other = std::env::temp_dir().join(format!("fault-other-{}", std::process::id()));
        for d in [&dir, &other] {
            let _ = std::fs::create_dir_all(d);
        }
        {
            let _g = inject(&dir, fail_nth(FaultOp::Create, 0));
            assert!(create_file(&dir.join("a")).is_err(), "first create in scope fails");
            assert!(create_file(&dir.join("b")).is_ok(), "only the Nth fails");
            assert!(create_file(&other.join("c")).is_ok(), "other dirs unaffected");
        }
        assert!(create_file(&dir.join("d")).is_ok(), "guard drop uninstalls the hook");
        for d in [&dir, &other] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn enospc_hook_reports_disk_full() {
        let dir = std::env::temp_dir().join(format!("fault-enospc-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("x");
        let mut f = create_file(&path).unwrap();
        let _g = inject(&dir, enospc(FaultOp::Write));
        let err = write_all(&mut f, &path, b"hi").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28), "ENOSPC");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
