//! Error type of the fleet engine.

use std::fmt;
use tskit::error::TsError;

/// Errors produced by the engine, the snapshot codec, and the durability
/// layer.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// Invalid [`crate::FleetConfig`].
    Config(String),
    /// Snapshot bytes could not be decoded.
    Codec(CodecError),
    /// A per-series state failed validation during restore.
    State(TsError),
    /// A shard worker is gone (channel closed) — the engine is poisoned.
    ShardDown,
    /// A bounded shard queue was full and the configured policy is
    /// [`crate::QueuePolicy::Reject`]. The batch was **not** applied (not
    /// even partially) and not logged; retry after draining in-flight
    /// batches with [`crate::FleetEngine::next_batch`].
    Backpressure {
        /// The shard whose queue was full.
        shard: usize,
    },
    /// [`crate::FleetEngine::ingest`] was called while pipelined batches
    /// from [`crate::FleetEngine::submit`] are still in flight; collect
    /// them with [`crate::FleetEngine::next_batch`] first.
    InFlight,
    /// [`crate::FleetEngine::set_admit_options`] targeted a series that
    /// is already past admission (live or rejected): per-series overrides
    /// only apply on the warm-up/admission path, and silently ignoring
    /// them would leave the caller believing the series is re-tuned.
    AlreadyAdmitted {
        /// The targeted series.
        key: crate::types::SeriesKey,
    },
    /// A durability I/O operation (WAL append/fsync, snapshot write)
    /// failed. Durable state on disk is still a consistent prefix. Under
    /// [`crate::DurabilityPolicy::CrashStop`] (the default) a failed WAL
    /// append additionally crash-stops that shard's worker (nothing past
    /// the failure is applied, and subsequent calls return
    /// [`FleetError::ShardDown`]) — treat the engine as poisoned and
    /// recover from disk. Under [`crate::DurabilityPolicy::Degrade`] the
    /// engine keeps serving instead: batches are applied un-durably, the
    /// WAL is retried with capped backoff, and
    /// [`crate::FleetStats::undurable_batches`] surfaces the window.
    Io(String),
    /// Crash recovery could not produce an engine (no valid snapshot, or
    /// an unreadable durability directory).
    Recovery(String),
    /// An internal invariant was violated (a registry slot vanished, a
    /// shard returned the wrong number of outputs). The engine state
    /// should be treated as suspect: snapshot what can be snapshotted and
    /// recover from disk.
    Internal(&'static str),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config(msg) => write!(f, "invalid fleet config: {msg}"),
            FleetError::Codec(e) => write!(f, "snapshot codec: {e}"),
            FleetError::State(e) => write!(f, "series state: {e}"),
            FleetError::ShardDown => write!(f, "a shard worker terminated unexpectedly"),
            FleetError::Backpressure { shard } => {
                write!(f, "shard {shard} queue is full (policy: reject)")
            }
            FleetError::InFlight => {
                write!(f, "pipelined batches in flight; collect them with next_batch first")
            }
            FleetError::AlreadyAdmitted { key } => {
                write!(
                    f,
                    "series {key} is already past admission; overrides only apply \
                           to unknown or still-warming series"
                )
            }
            FleetError::Io(msg) => write!(f, "durability i/o: {msg}"),
            FleetError::Recovery(msg) => write!(f, "crash recovery: {msg}"),
            FleetError::Internal(what) => {
                write!(f, "internal invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for FleetError {}

impl From<CodecError> for FleetError {
    fn from(e: CodecError) -> Self {
        FleetError::Codec(e)
    }
}

impl From<TsError> for FleetError {
    fn from(e: TsError) -> Self {
        FleetError::State(e)
    }
}

/// Decoding failures of the versioned snapshot format.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// Input ended before the structure was complete.
    Truncated,
    /// The input does not start with the snapshot magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// A field held a value outside its domain.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated input"),
            CodecError::BadMagic => write!(f, "not a fleet snapshot (bad magic)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            CodecError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}
