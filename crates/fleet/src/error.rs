//! Error type of the fleet engine.

use std::fmt;
use tskit::error::TsError;

/// Errors produced by the engine and the snapshot codec.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// Invalid [`crate::FleetConfig`].
    Config(String),
    /// Snapshot bytes could not be decoded.
    Codec(CodecError),
    /// A per-series state failed validation during restore.
    State(TsError),
    /// A shard worker is gone (channel closed) — the engine is poisoned.
    ShardDown,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config(msg) => write!(f, "invalid fleet config: {msg}"),
            FleetError::Codec(e) => write!(f, "snapshot codec: {e}"),
            FleetError::State(e) => write!(f, "series state: {e}"),
            FleetError::ShardDown => write!(f, "a shard worker terminated unexpectedly"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<CodecError> for FleetError {
    fn from(e: CodecError) -> Self {
        FleetError::Codec(e)
    }
}

impl From<TsError> for FleetError {
    fn from(e: TsError) -> Self {
        FleetError::State(e)
    }
}

/// Decoding failures of the versioned snapshot format.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// Input ended before the structure was complete.
    Truncated,
    /// The input does not start with the snapshot magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// A field held a value outside its domain.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated input"),
            CodecError::BadMagic => write!(f, "not a fleet snapshot (bad magic)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            CodecError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}
