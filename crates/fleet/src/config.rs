//! Engine configuration, including per-series admission-time overrides.

use crate::backend::BackendSelect;
use oneshotstl::{OneShotStlConfig, ScoreConfig, ShiftPrune, ShiftSearchConfig};

/// How the seasonal period of an incoming series is determined.
#[derive(Debug, Clone, PartialEq)]
pub enum PeriodPolicy {
    /// Every series uses this period (no detection).
    Fixed(usize),
    /// Detect the period from the warm-up buffer with the ACF detector
    /// (`tskit::period::detect_period`).
    Detect {
        /// Smallest admissible period (≥ 2).
        min_period: usize,
        /// Largest admissible period.
        max_period: usize,
        /// Minimum ACF peak for a detection to count.
        min_acf: f64,
        /// Period to assume when the warm-up cap is reached without a
        /// detection; `None` rejects the series instead.
        fallback: Option<usize>,
    },
}

impl PeriodPolicy {
    /// The default detector: periods in `[4, 512]`, modest ACF bar, and a
    /// `find_length`-style fallback of 125.
    pub fn detect_default() -> Self {
        PeriodPolicy::Detect {
            min_period: 4,
            max_period: 512,
            min_acf: 0.1,
            fallback: Some(125),
        }
    }
}

/// Per-series multi-horizon forecasting (paper §5): the damped-trend
/// STD→TSF rule `ŷ(t+h) = τ(t) + slope·Σφ^j + v[(t+Δ+h) mod T]` evaluated
/// on each live detector's decomposition, plus an O(1) rolling
/// forecast-error tracker feeding quality stats and (optionally) the
/// anomaly verdict.
///
/// Disabled by default: a fleet that never forecasts carries no per-series
/// forecast state and its scoring stream is untouched. With `enabled`,
/// every series admitted from then on maintains a pending one-step
/// forecast and a windowed MAE/sMAPE tracker
/// (`forecast::RollingError`) — both persisted by snapshot codec v6 and
/// restored bit-identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastOptions {
    /// Attach a forecast head (and error tracker) to series at admission.
    pub enabled: bool,
    /// Damping factor `φ ∈ [0, 1]` of the trend extrapolation: `1.0` is
    /// the paper's linear `slope·h`, `0.0` pure carry-forward.
    pub damping: f64,
    /// Window `W ≥ 1` of the rolling forecast-error tracker (pairs of
    /// one-step forecast vs realized value).
    pub error_window: u32,
    /// Fuse the tracker into the anomaly verdict: a full window whose
    /// rolling sMAPE exceeds [`ForecastOptions::smape_alarm`] flags the
    /// point anomalous (model-drift signal), on top of the residual
    /// scorer's verdict.
    pub error_fusion: bool,
    /// Rolling-sMAPE alarm bar for `error_fusion`, in `(0, 2]` (sMAPE is
    /// bounded by 2).
    pub smape_alarm: f64,
}

impl Default for ForecastOptions {
    fn default() -> Self {
        ForecastOptions {
            enabled: false,
            damping: 1.0,
            error_window: 64,
            error_fusion: false,
            smape_alarm: 1.5,
        }
    }
}

impl ForecastOptions {
    /// Forecasting on with the default damping/tracker parameters.
    pub fn on() -> Self {
        ForecastOptions { enabled: true, ..Default::default() }
    }

    /// Validates the options, returning a message for the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if !((0.0..=1.0).contains(&self.damping) && self.damping.is_finite()) {
            return Err(format!("forecast damping must be in [0, 1], got {}", self.damping));
        }
        if self.error_window == 0 {
            return Err("forecast error_window must be >= 1".into());
        }
        if !(self.smape_alarm.is_finite() && self.smape_alarm > 0.0 && self.smape_alarm <= 2.0)
        {
            return Err(format!(
                "forecast smape_alarm must be in (0, 2], got {}",
                self.smape_alarm
            ));
        }
        Ok(())
    }
}

/// Per-series overrides of the engine-wide [`FleetConfig`], applied on
/// the warm-up/admission path (see
/// [`crate::FleetEngine::set_admit_options`]).
///
/// Every field is optional; `None` inherits the engine config. Overrides
/// are registered while a series is unknown or still warming and are
/// **baked into the detector at promotion** — a live series' tuning
/// travels inside its detector state from then on (and through snapshots,
/// which encode per-series detector configs). Overrides registered on a
/// still-warming series are themselves persisted by snapshot codec v4, so
/// a restore mid-warm-up admits with the same tuning. TTL eviction
/// removes the series entirely, overrides included.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdmitOptions {
    /// Trend penalty λ: overrides *both* λ1 and λ2 (the paper ties and
    /// tunes them together); the anchor weight is untouched.
    pub lambda: Option<f64>,
    /// NSigma threshold `n`, applied to both the detector's §3.4
    /// shift-search trigger and the task-level anomaly verdict.
    pub nsigma: Option<f64>,
    /// Declared seasonal period for this series, overriding the engine's
    /// [`PeriodPolicy`] (skips ACF detection entirely).
    pub period: Option<usize>,
    /// §3.4 shift-search pipeline override (pruning policy).
    pub shift_search: Option<ShiftSearchConfig>,
    /// Residual scoring override (CUSUM fusion; see
    /// [`oneshotstl::score`]) for the task-level verdict.
    pub score: Option<ScoreConfig>,
    /// Forecasting override: enable/disable or re-tune the forecast head
    /// and error tracker for this series (see [`ForecastOptions`]).
    pub forecast: Option<ForecastOptions>,
    /// Detection-backend override: run DAMP, the trend-innovation CUSUM,
    /// or an ensemble instead of (or on top of) the fused residual
    /// scorer for this series (see [`BackendSelect`]).
    pub backend: Option<BackendSelect>,
}

impl AdmitOptions {
    /// True when every field inherits the engine config.
    pub fn is_default(&self) -> bool {
        *self == AdmitOptions::default()
    }

    /// The detector configuration a series admitted under these options
    /// uses.
    pub fn detector_config(&self, base: &FleetConfig) -> OneShotStlConfig {
        let mut cfg = base.detector.clone();
        if let Some(l) = self.lambda {
            cfg.lambdas.lambda1 = l;
            cfg.lambdas.lambda2 = l;
        }
        if let Some(n) = self.nsigma {
            cfg.nsigma = n;
        }
        if let Some(ss) = self.shift_search {
            cfg.shift_search = ss;
        }
        cfg
    }

    /// The task-level NSigma threshold for the anomaly verdict.
    pub fn task_nsigma(&self, base: &FleetConfig) -> f64 {
        self.nsigma.unwrap_or(base.nsigma)
    }

    /// The residual scoring configuration for the task-level verdict.
    pub fn task_score(&self, base: &FleetConfig) -> ScoreConfig {
        self.score.unwrap_or(base.score)
    }

    /// The forecasting configuration for a series admitted under these
    /// options.
    pub fn task_forecast(&self, base: &FleetConfig) -> ForecastOptions {
        self.forecast.unwrap_or(base.forecast)
    }

    /// The detection backend a series admitted under these options runs.
    pub fn task_backend(&self, base: &FleetConfig) -> BackendSelect {
        self.backend.unwrap_or(base.backend)
    }

    /// Validates the overrides (mirrors [`FleetConfig::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        if let Some(t) = self.period {
            if t < 2 {
                return Err(format!("override period must be >= 2, got {t}"));
            }
        }
        if let Some(l) = self.lambda {
            if !(l.is_finite() && l > 0.0) {
                return Err(format!("override lambda must be finite and > 0, got {l}"));
            }
        }
        if let Some(n) = self.nsigma {
            if !(n.is_finite() && n > 0.0) {
                return Err(format!("override nsigma must be finite and > 0, got {n}"));
            }
        }
        if let Some(ss) = self.shift_search {
            validate_shift_search(&ss)?;
        }
        if let Some(sc) = self.score {
            sc.validate()?;
        }
        if let Some(f) = self.forecast {
            f.validate()?;
        }
        if let Some(b) = self.backend {
            b.validate()?;
        }
        Ok(())
    }
}

/// `TopK(0)` would run the shift search with zero candidates — every
/// flagged point silently keeps Δt = 0, which reads like a tuned search
/// but never adopts a genuine shift. Reject it at the fleet boundary; a
/// caller who wants the search off should set the detector's
/// `shift_window` to 0 and skip it wholesale.
fn validate_shift_search(ss: &ShiftSearchConfig) -> Result<(), String> {
    if ss.prune == ShiftPrune::TopK(0) {
        return Err(
            "shift_search TopK(0) never adopts a shift; use shift_window: 0 to disable \
             the search instead"
                .into(),
        );
    }
    Ok(())
}

/// How per-series numeric state is laid out in snapshot bytes (codec v9).
///
/// The per-series footprint is dominated by the seasonal buffer and the
/// solver vectors — `O(T)` `f64`s each. [`StateCompression::Compact`]
/// stores them delta-encoded with `f32` deltas (first element exact, each
/// subsequent element reconstructed as `prev + f32(x − prev)`), roughly
/// halving snapshot bytes per series. The encoding is **lossy** at `f32`
/// delta precision, so it trades the bit-identical-restore guarantee for
/// footprint — the right trade for a million-series archive tier, the
/// wrong one for the hot path. The default keeps today's exact `f64`
/// layout; the cold tier (`crate::cold_tier`) always spills exact bytes
/// regardless of this setting, because rehydration must be bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StateCompression {
    /// Exact `f64` bit patterns (bit-identical restore; the default).
    #[default]
    Exact,
    /// Delta-encoded `f32` seasonal/solver vectors (lossy, ~2× smaller).
    Compact,
}

/// What a full bounded shard queue does to a new batch submission.
///
/// Only meaningful with [`FleetConfig::queue_capacity`] set; with
/// unbounded queues the policy is never consulted. See the crate docs'
/// backpressure section for how capacity is accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// The submitting thread blocks until the shard drains a slot. Ingest
    /// never fails from load, but a slow shard stalls the caller — the
    /// natural choice when the caller *is* the load source and slowing it
    /// down is the point of backpressure.
    #[default]
    Block,
    /// Submission fails fast with [`crate::FleetError::Backpressure`] and
    /// the batch is not applied (not even partially) — the choice when the
    /// caller would rather shed load (drop, spill, or retry elsewhere)
    /// than stall.
    Reject,
}

/// Configuration of a [`crate::FleetEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Worker shards (threads). Keys are routed by stable hash.
    pub shards: usize,
    /// Warm-up length multiplier: a series is admitted once `k·T` points
    /// are buffered (`T` = its period). Must be ≥ 3 so the OneShotSTL
    /// initialization window constraint `≥ 2T + 1` always holds.
    pub init_cycles: usize,
    /// Period determination policy.
    pub period: PeriodPolicy,
    /// Hard cap on warm-up buffering per series; reaching it without a
    /// usable period rejects the series (or admits it with the policy's
    /// fallback period). `None` derives a cap from the period policy.
    pub max_warmup: Option<usize>,
    /// NSigma threshold for the per-series anomaly verdict.
    pub nsigma: f64,
    /// Evict series idle for more than this many clock ticks (record `t`
    /// units). `None` disables TTL eviction.
    pub ttl: Option<u64>,
    /// Upper bound on how far one record may advance the engine clock
    /// (record `t` units). With untrusted producers, a single absurd
    /// timestamp would otherwise jump the clock and the next TTL sweep
    /// would evict the entire fleet; a bound keeps the clock moving at
    /// most `max_clock_step` per record. `None` trusts timestamps fully.
    pub max_clock_step: Option<u64>,
    /// Bound on each shard's request queue, in messages (one ingested
    /// batch, stats poll, or eviction sweep = one message). `None` leaves
    /// the queues unbounded — fine for the synchronous [`ingest`] loop,
    /// which never keeps more than one batch in flight, but the pipelined
    /// [`submit`] path can outrun a slow shard without a bound.
    ///
    /// [`ingest`]: crate::FleetEngine::ingest
    /// [`submit`]: crate::FleetEngine::submit
    pub queue_capacity: Option<usize>,
    /// What happens when a bounded queue is full (see [`QueuePolicy`]).
    pub queue_policy: QueuePolicy,
    /// Decomposer configuration for admitted series.
    pub detector: OneShotStlConfig,
    /// Residual scoring configuration for the task-level verdict
    /// (persistence-aware CUSUM fusion; [`ScoreConfig::off`] reproduces
    /// the pre-v5 instantaneous z-score pipeline bit-identically).
    pub score: ScoreConfig,
    /// Per-series forecasting (§5 damped-trend rule + rolling error
    /// tracker). Disabled by default; series admitted while enabled carry
    /// forecast state through snapshots and crash recovery.
    pub forecast: ForecastOptions,
    /// Detection backend for admitted series ([`BackendSelect::Fused`]
    /// by default — the plain fused-scorer pipeline with no extra
    /// state). Series admitted under another selection carry their
    /// backend state through snapshots (codec v7) and crash recovery.
    pub backend: BackendSelect,
    /// Snapshot state layout (codec v9): exact `f64` (default,
    /// bit-identical restore) or delta-encoded `f32` vectors (lossy,
    /// roughly half the bytes per live series). See [`StateCompression`].
    pub compression: StateCompression,
    /// Spill series idle for more than this many clock ticks to the
    /// on-disk cold tier (when one is attached; see
    /// [`crate::FleetEngine::attach_cold_dir`]). Distinct from [`ttl`]:
    /// a spilled series is *not* gone — its next point rehydrates it
    /// bit-identically through the normal shard path — whereas TTL
    /// eviction forgets it entirely. When both are set, `spill_after`
    /// must be strictly smaller than `ttl`. `None` disables spilling.
    ///
    /// [`ttl`]: FleetConfig::ttl
    pub spill_after: Option<u64>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            init_cycles: 3,
            period: PeriodPolicy::detect_default(),
            max_warmup: None,
            nsigma: 5.0,
            ttl: None,
            max_clock_step: None,
            queue_capacity: None,
            queue_policy: QueuePolicy::default(),
            detector: OneShotStlConfig::default(),
            score: ScoreConfig::default(),
            forecast: ForecastOptions::default(),
            backend: BackendSelect::default(),
            compression: StateCompression::default(),
            spill_after: None,
        }
    }
}

impl FleetConfig {
    /// A fixed-period config — the common case when the tenant declares
    /// its metric resolution up front.
    pub fn fixed_period(period: usize) -> Self {
        FleetConfig { period: PeriodPolicy::Fixed(period), ..Default::default() }
    }

    /// Admission length for a known period `t`: `max(init_cycles·T, 2T+1)`.
    pub fn init_len(&self, period: usize) -> usize {
        (self.init_cycles * period).max(2 * period + 1)
    }

    /// The effective warm-up cap.
    pub fn warmup_cap(&self) -> usize {
        if let Some(cap) = self.max_warmup {
            return cap;
        }
        match &self.period {
            PeriodPolicy::Fixed(t) => self.init_len(*t),
            PeriodPolicy::Detect { max_period, .. } => self.init_len(*max_period),
        }
    }

    /// Validates the configuration, returning a message for the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("shards must be >= 1".into());
        }
        if self.init_cycles < 3 {
            return Err(
                "init_cycles must be >= 3 (OneShotSTL needs >= 2T+1 init points)".into()
            );
        }
        match &self.period {
            PeriodPolicy::Fixed(t) if *t < 2 => {
                return Err(format!("fixed period must be >= 2, got {t}"));
            }
            PeriodPolicy::Detect { min_period, max_period, fallback, .. } => {
                if *min_period < 2 || max_period <= min_period {
                    return Err(format!(
                        "detect range must satisfy 2 <= min < max, got [{min_period}, {max_period}]"
                    ));
                }
                if let Some(f) = fallback {
                    if *f < 2 {
                        return Err(format!("fallback period must be >= 2, got {f}"));
                    }
                }
            }
            PeriodPolicy::Fixed(_) => {}
        }
        if self.warmup_cap() < 5 {
            return Err("warm-up cap too small to ever admit a series".into());
        }
        if self.max_clock_step == Some(0) {
            return Err("max_clock_step must be >= 1 (or None)".into());
        }
        if self.queue_capacity == Some(0) {
            return Err("queue_capacity must be >= 1 (or None for unbounded)".into());
        }
        if self.spill_after == Some(0) {
            return Err("spill_after must be >= 1 (or None to disable spilling)".into());
        }
        if let (Some(spill), Some(ttl)) = (self.spill_after, self.ttl) {
            if spill >= ttl {
                return Err(format!(
                    "spill_after ({spill}) must be < ttl ({ttl}): a series must go cold \
                     before it is forgotten"
                ));
            }
        }
        validate_shift_search(&self.detector.shift_search)?;
        self.score.validate()?;
        self.forecast.validate()?;
        self.backend.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(FleetConfig::default().validate(), Ok(()));
        assert_eq!(FleetConfig::fixed_period(24).validate(), Ok(()));
    }

    #[test]
    fn init_len_honours_oneshotstl_minimum() {
        let cfg = FleetConfig { init_cycles: 3, ..Default::default() };
        assert_eq!(cfg.init_len(24), 72);
        // tiny periods: 2T+1 dominates k·T only when k·T would be too short
        assert_eq!(cfg.init_len(2), 6);
        let cfg4 = FleetConfig { init_cycles: 4, ..Default::default() };
        assert_eq!(cfg4.init_len(2), 8);
    }

    #[test]
    fn invalid_configs_are_caught() {
        assert!(FleetConfig { shards: 0, ..Default::default() }.validate().is_err());
        assert!(FleetConfig { init_cycles: 2, ..Default::default() }.validate().is_err());
        assert!(FleetConfig::fixed_period(1).validate().is_err());
        let bad_detect = FleetConfig {
            period: PeriodPolicy::Detect {
                min_period: 10,
                max_period: 10,
                min_acf: 0.1,
                fallback: None,
            },
            ..Default::default()
        };
        assert!(bad_detect.validate().is_err());
        let zero_queue = FleetConfig { queue_capacity: Some(0), ..Default::default() };
        assert!(zero_queue.validate().is_err());
        let bounded = FleetConfig {
            queue_capacity: Some(8),
            queue_policy: QueuePolicy::Reject,
            ..Default::default()
        };
        assert_eq!(bounded.validate(), Ok(()));
    }

    #[test]
    fn degenerate_spill_configs_are_rejected() {
        let zero = FleetConfig { spill_after: Some(0), ..Default::default() };
        assert!(zero.validate().is_err());
        let inverted =
            FleetConfig { spill_after: Some(500), ttl: Some(500), ..Default::default() };
        assert!(inverted.validate().is_err());
        let ok = FleetConfig { spill_after: Some(200), ttl: Some(500), ..Default::default() };
        assert_eq!(ok.validate(), Ok(()));
        let no_ttl = FleetConfig { spill_after: Some(200), ..Default::default() };
        assert_eq!(no_ttl.validate(), Ok(()));
    }

    #[test]
    fn degenerate_score_config_is_rejected() {
        // engine-wide scoring config…
        let mut cfg = FleetConfig::default();
        cfg.score.cusum_h = 0.0;
        assert!(cfg.validate().is_err());
        // …and per-series overrides
        let opts = AdmitOptions {
            score: Some(ScoreConfig { hold_decay: 1.5, ..Default::default() }),
            ..Default::default()
        };
        assert!(opts.validate().is_err());
        let ok = AdmitOptions { score: Some(ScoreConfig::off()), ..Default::default() };
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn degenerate_forecast_options_are_rejected() {
        // engine-wide forecast config…
        let mut cfg = FleetConfig::default();
        cfg.forecast.damping = 1.5;
        assert!(cfg.validate().is_err());
        cfg.forecast.damping = f64::NAN;
        assert!(cfg.validate().is_err());
        // …and per-series overrides
        for bad in [
            ForecastOptions { error_window: 0, ..ForecastOptions::on() },
            ForecastOptions { smape_alarm: 0.0, ..ForecastOptions::on() },
            ForecastOptions { smape_alarm: 2.5, ..ForecastOptions::on() },
        ] {
            let opts = AdmitOptions { forecast: Some(bad), ..Default::default() };
            assert!(opts.validate().is_err(), "{bad:?} must be rejected");
        }
        let ok = AdmitOptions { forecast: Some(ForecastOptions::on()), ..Default::default() };
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn degenerate_backend_selections_are_rejected() {
        use crate::backend::{DampOptions, EnsembleOptions};
        // engine-wide backend config…
        let mut cfg = FleetConfig {
            backend: BackendSelect::Damp(DampOptions { window: 8, subseq: 0 }),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        cfg.backend = BackendSelect::Ensemble(EnsembleOptions {
            weights: [0.0; 3],
            ..Default::default()
        });
        assert!(cfg.validate().is_err());
        cfg.backend = BackendSelect::Ensemble(EnsembleOptions::default());
        assert_eq!(cfg.validate(), Ok(()));
        // …and per-series overrides
        let opts = AdmitOptions {
            backend: Some(BackendSelect::Damp(DampOptions { window: 16, subseq: 12 })),
            ..Default::default()
        };
        assert!(opts.validate().is_err());
        let ok = AdmitOptions {
            backend: Some(BackendSelect::Damp(DampOptions::default())),
            ..Default::default()
        };
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn degenerate_top_k_zero_is_rejected() {
        // engine-wide detector config…
        let mut cfg = FleetConfig::default();
        cfg.detector.shift_search = ShiftSearchConfig::top_k(0);
        assert!(cfg.validate().is_err());
        // …and per-series overrides
        let opts = AdmitOptions {
            shift_search: Some(ShiftSearchConfig::top_k(0)),
            ..Default::default()
        };
        assert!(opts.validate().is_err());
        let ok = AdmitOptions {
            shift_search: Some(ShiftSearchConfig::top_k(1)),
            ..Default::default()
        };
        assert_eq!(ok.validate(), Ok(()));
    }
}
