//! Binary TCP ingest frontend.
//!
//! Exposes a running [`FleetEngine`] over a socket so producers in other
//! processes (or other hosts) can feed it without linking the crate. The
//! wire format deliberately reuses the WAL record shape — length-prefixed
//! CRC32-checked frames of little-endian fields — so both untrusted byte
//! boundaries of the crate (disk and network) share one set of framing
//! conventions and one checksum ([`crate::wal::crc32`]).
//!
//! ## Protocol
//!
//! A connection opens with a 10-byte hello in each direction — the
//! [`NET_MAGIC`] followed by the little-endian [`NET_VERSION`] — client
//! first, server echoing after validation. Every subsequent message, in
//! either direction, is one frame:
//!
//! ```text
//! u32 payload_len · u32 crc32(payload) · payload
//! payload = u8 message type · body (see NetMessage)
//! ```
//!
//! Requests are [`NetMessage::IngestBatch`], [`NetMessage::Forecast`],
//! [`NetMessage::Stats`], and [`NetMessage::SetAdmitOptions`]; each gets
//! exactly one reply frame, in request order. Ingest replies are
//! pipelined: the server answers a batch with [`NetMessage::Scored`]
//! *lazily* — while more request bytes are already buffered on the
//! socket it keeps submitting (up to a bounded in-flight window) and
//! flushes replies when the socket goes quiet, when a non-ingest request
//! needs the line, or when the window fills. A full shard queue under
//! [`crate::QueuePolicy::Reject`] surfaces as a typed
//! [`NetMessage::Backpressure`] reply rather than a torn connection.
//!
//! Frame decoding never trusts the peer: length caps before allocation,
//! CRC before parsing, and typed [`CodecError`]s for truncated, corrupt,
//! or trailing bytes (property-tested alongside the snapshot codec).
//!
//! ## Quick start
//!
//! ```
//! use fleet::{FleetConfig, FleetEngine, NetClient, NetServer, Record};
//!
//! let engine = FleetEngine::new(FleetConfig::fixed_period(24)).unwrap();
//! let server = NetServer::serve("127.0.0.1:0", engine).unwrap();
//! let mut client = NetClient::connect(server.local_addr()).unwrap();
//! let scored = client
//!     .ingest(vec![Record::new("host-1/cpu", 0, 1.0)])
//!     .unwrap();
//! assert_eq!(scored.len(), 1);
//! server.shutdown();
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::codec::{
    decode_admit_options, encode_admit_options, Reader, Writer, VERSION as CODEC_VERSION,
};
use crate::config::AdmitOptions;
use crate::engine::FleetEngine;
use crate::error::{CodecError, FleetError};
use crate::types::{FleetStats, PointOutput, Record, ScoredPoint, SeriesKey, ShardStats};
use crate::wal::crc32;
use tskit::series::DecompPoint;

/// Magic bytes opening the connection hello (and nothing else — frames
/// themselves are unmarked, the hello authenticates the stream).
pub const NET_MAGIC: [u8; 8] = *b"OSTLFNET";

/// Wire protocol version, bumped on any frame-format change.
pub const NET_VERSION: u16 = 1;

/// Upper bound on a frame's payload length (64 MiB). A length prefix
/// beyond this is rejected before any allocation happens — the first
/// line of defense against a corrupt or hostile peer.
pub const MAX_FRAME: usize = 1 << 26;

/// How many ingest batches the server keeps in flight per connection
/// before it stops reading and flushes replies.
const SERVER_WINDOW: usize = 8;

/// How many ingest batches [`NetClient::submit`] pipelines before it
/// blocks on a reply. Kept below the server's window so the two sides
/// never deadlock with both waiting to write.
const CLIENT_WINDOW: usize = 4;

// -------------------------------------------------------------------------
// messages
// -------------------------------------------------------------------------

/// One frame of the network protocol — requests (client → server) and
/// replies (server → client) share the message space; their type tags are
/// disjoint (requests < 128, replies ≥ 128).
#[derive(Debug, Clone, PartialEq)]
pub enum NetMessage {
    /// Ingest a batch of records (reply: [`NetMessage::Scored`], or
    /// [`NetMessage::Backpressure`] / [`NetMessage::Error`]).
    IngestBatch(Vec<Record>),
    /// Forecast `1..=horizon` steps ahead for each key (reply:
    /// [`NetMessage::ForecastReply`]).
    Forecast {
        /// The series to forecast.
        keys: Vec<SeriesKey>,
        /// Steps ahead.
        horizon: u32,
    },
    /// Fetch engine statistics (reply: [`NetMessage::StatsReply`]).
    Stats,
    /// Register per-series admission overrides (reply:
    /// [`NetMessage::Done`] or [`NetMessage::Error`]).
    SetAdmitOptions {
        /// The series to tune.
        key: SeriesKey,
        /// The overrides (see [`AdmitOptions`]); encoded with the same
        /// codec the snapshot format uses.
        opts: AdmitOptions,
    },
    /// Reply: one [`ScoredPoint`] per record of the answered batch, in
    /// batch order.
    Scored(Vec<ScoredPoint>),
    /// Reply: one slot per requested key, in request order.
    ForecastReply(Vec<Option<Vec<f64>>>),
    /// Reply: aggregate + per-shard statistics.
    StatsReply(FleetStats),
    /// Reply: acknowledged, nothing to return.
    Done,
    /// Reply: the batch was rejected whole — a shard queue was full under
    /// [`crate::QueuePolicy::Reject`]. Nothing was applied or logged;
    /// resubmit after backing off.
    Backpressure {
        /// The shard whose queue was full.
        shard: u32,
    },
    /// Reply: the request failed (message carries the engine error text).
    /// The connection stays open unless the failure poisoned the engine.
    Error(String),
}

const T_INGEST: u8 = 1;
const T_FORECAST: u8 = 2;
const T_STATS: u8 = 3;
const T_ADMIT: u8 = 4;
const T_SCORED: u8 = 128;
const T_FORECAST_R: u8 = 129;
const T_STATS_R: u8 = 130;
const T_DONE: u8 = 131;
const T_BACKPRESSURE: u8 = 133;
const T_ERROR: u8 = 134;

// -------------------------------------------------------------------------
// frame codec
// -------------------------------------------------------------------------

/// The 10-byte connection hello: [`NET_MAGIC`] then [`NET_VERSION`].
pub fn hello_bytes() -> [u8; 10] {
    let mut h = [0u8; 10];
    h[..8].copy_from_slice(&NET_MAGIC);
    h[8..].copy_from_slice(&NET_VERSION.to_le_bytes());
    h
}

/// Validates a peer's hello: wrong magic is [`CodecError::BadMagic`], a
/// version this build does not speak is
/// [`CodecError::UnsupportedVersion`].
pub fn check_hello(bytes: &[u8; 10]) -> Result<(), CodecError> {
    if bytes[..8] != NET_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let v = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
    if v != NET_VERSION {
        return Err(CodecError::UnsupportedVersion(v));
    }
    Ok(())
}

/// Encodes one message as a complete frame appended to `buf` (which is
/// cleared first — the out-param shape lets a connection reuse one
/// allocation across frames, like the WAL's record encoder).
pub fn encode_frame_into(buf: &mut Vec<u8>, msg: &NetMessage) {
    let mut w = Writer { buf: std::mem::take(buf) };
    w.buf.clear();
    w.buf.extend_from_slice(&[0u8; 8]); // len + crc, backfilled below
    encode_body(&mut w, msg);
    let payload_len = (w.buf.len() - 8) as u32;
    let crc = crc32(&w.buf[8..]);
    w.buf[..4].copy_from_slice(&payload_len.to_le_bytes());
    w.buf[4..8].copy_from_slice(&crc.to_le_bytes());
    *buf = w.buf;
}

/// Encodes one message as a complete frame.
pub fn encode_frame(msg: &NetMessage) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_frame_into(&mut buf, msg);
    buf
}

/// Decodes the first frame of `buf`, if one is complete.
///
/// Returns `Ok(None)` when `buf` holds only a prefix of a frame (read
/// more bytes and retry — the streaming contract), `Ok(Some((msg,
/// consumed)))` on success, and a typed [`CodecError`] when the bytes can
/// never become a valid frame: an oversized or zero length prefix, a CRC
/// mismatch, an unknown message type, or a payload whose body does not
/// exactly fill its declared length.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(NetMessage, usize)>, CodecError> {
    if buf.len() < 8 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(CodecError::Invalid("frame length"));
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if buf.len() < 8 + len {
        return Ok(None);
    }
    let payload = &buf[8..8 + len];
    if crc32(payload) != crc {
        return Err(CodecError::Invalid("frame checksum"));
    }
    let mut r = Reader { data: payload, pos: 0 };
    let msg = decode_body(&mut r)?;
    if r.pos != payload.len() {
        return Err(CodecError::Invalid("frame payload length"));
    }
    Ok(Some((msg, 8 + len)))
}

/// Strict single-frame decode: `buf` must hold exactly one complete
/// frame. A prefix is [`CodecError::Truncated`]; bytes past the frame are
/// rejected. This is the property-test surface — the streaming decoder
/// ([`decode_frame`]) answers "wait for more" where this answers with the
/// typed error.
pub fn decode_frame_exact(buf: &[u8]) -> Result<NetMessage, CodecError> {
    match decode_frame(buf)? {
        None => Err(CodecError::Truncated),
        Some((_, used)) if used != buf.len() => {
            Err(CodecError::Invalid("bytes after the frame"))
        }
        Some((msg, _)) => Ok(msg),
    }
}

fn encode_body(w: &mut Writer, msg: &NetMessage) {
    match msg {
        NetMessage::IngestBatch(records) => {
            w.u8(T_INGEST);
            w.u32(records.len() as u32);
            for rec in records {
                w.u64(rec.t);
                w.f64(rec.value);
                w.string(rec.key.as_str());
            }
        }
        NetMessage::Forecast { keys, horizon } => {
            w.u8(T_FORECAST);
            w.u32(*horizon);
            w.u32(keys.len() as u32);
            for key in keys {
                w.string(key.as_str());
            }
        }
        NetMessage::Stats => w.u8(T_STATS),
        NetMessage::SetAdmitOptions { key, opts } => {
            w.u8(T_ADMIT);
            w.string(key.as_str());
            encode_admit_options(w, opts);
        }
        NetMessage::Scored(points) => {
            w.u8(T_SCORED);
            w.u32(points.len() as u32);
            for p in points {
                w.u64(p.t);
                w.f64(p.value);
                w.string(p.key.as_str());
                encode_output(w, &p.output);
            }
        }
        NetMessage::ForecastReply(slots) => {
            w.u8(T_FORECAST_R);
            w.u32(slots.len() as u32);
            for slot in slots {
                match slot {
                    None => w.u8(0),
                    Some(fc) => {
                        w.u8(1);
                        w.u32(fc.len() as u32);
                        for &v in fc {
                            w.f64(v);
                        }
                    }
                }
            }
        }
        NetMessage::StatsReply(stats) => {
            w.u8(T_STATS_R);
            encode_stats(w, stats);
        }
        NetMessage::Done => w.u8(T_DONE),
        NetMessage::Backpressure { shard } => {
            w.u8(T_BACKPRESSURE);
            w.u32(*shard);
        }
        NetMessage::Error(msg) => {
            w.u8(T_ERROR);
            w.string(msg);
        }
    }
}

/// Reads a declared element count and rejects it up front when the
/// remaining payload could not possibly hold that many elements of at
/// least `min_size` bytes — so a hostile count cannot drive a huge
/// allocation before the parse fails.
fn checked_count(r: &mut Reader<'_>, min_size: usize) -> Result<usize, CodecError> {
    let n = r.u32()? as usize;
    if n > r.remaining() / min_size.max(1) {
        return Err(CodecError::Invalid("element count"));
    }
    Ok(n)
}

fn decode_body(r: &mut Reader<'_>) -> Result<NetMessage, CodecError> {
    match r.u8()? {
        T_INGEST => {
            // u64 t + f64 value + u32 key length
            let n = checked_count(r, 20)?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                let t = r.u64()?;
                let value = r.f64()?;
                let key = SeriesKey::new(r.string()?);
                records.push(Record { key, t, value });
            }
            Ok(NetMessage::IngestBatch(records))
        }
        T_FORECAST => {
            let horizon = r.u32()?;
            let n = checked_count(r, 4)?;
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(SeriesKey::new(r.string()?));
            }
            Ok(NetMessage::Forecast { keys, horizon })
        }
        T_STATS => Ok(NetMessage::Stats),
        T_ADMIT => {
            let key = SeriesKey::new(r.string()?);
            let opts = decode_admit_options(r, CODEC_VERSION)?;
            Ok(NetMessage::SetAdmitOptions { key, opts })
        }
        T_SCORED => {
            // u64 t + f64 value + u32 key length + u8 output tag
            let n = checked_count(r, 21)?;
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                let t = r.u64()?;
                let value = r.f64()?;
                let key = SeriesKey::new(r.string()?);
                let output = decode_output(r)?;
                points.push(ScoredPoint { key, t, value, output });
            }
            Ok(NetMessage::Scored(points))
        }
        T_FORECAST_R => {
            let n = checked_count(r, 1)?;
            let mut slots = Vec::with_capacity(n);
            for _ in 0..n {
                slots.push(match r.u8()? {
                    0 => None,
                    1 => {
                        let m = checked_count(r, 8)?;
                        let mut fc = Vec::with_capacity(m);
                        for _ in 0..m {
                            fc.push(r.f64()?);
                        }
                        Some(fc)
                    }
                    _ => return Err(CodecError::Invalid("option tag")),
                });
            }
            Ok(NetMessage::ForecastReply(slots))
        }
        T_STATS_R => Ok(NetMessage::StatsReply(decode_stats(r)?)),
        T_DONE => Ok(NetMessage::Done),
        T_BACKPRESSURE => Ok(NetMessage::Backpressure { shard: r.u32()? }),
        T_ERROR => Ok(NetMessage::Error(r.string()?.to_string())),
        _ => Err(CodecError::Invalid("message type")),
    }
}

fn encode_output(w: &mut Writer, output: &PointOutput) {
    match output {
        PointOutput::Warming { buffered, needed } => {
            w.u8(0);
            w.u64(*buffered as u64);
            match needed {
                None => w.u8(0),
                Some(n) => {
                    w.u8(1);
                    w.u64(*n as u64);
                }
            }
        }
        PointOutput::Scored { point, score, is_anomaly } => {
            w.u8(1);
            w.f64(point.trend);
            w.f64(point.seasonal);
            w.f64(point.residual);
            w.f64(*score);
            w.u8(u8::from(*is_anomaly));
        }
        PointOutput::Rejected => w.u8(2),
        PointOutput::Quarantined => w.u8(3),
    }
}

fn decode_output(r: &mut Reader<'_>) -> Result<PointOutput, CodecError> {
    match r.u8()? {
        0 => {
            let buffered = r.u64()? as usize;
            let needed = match r.u8()? {
                0 => None,
                1 => Some(r.u64()? as usize),
                _ => return Err(CodecError::Invalid("option tag")),
            };
            Ok(PointOutput::Warming { buffered, needed })
        }
        1 => {
            let point = DecompPoint { trend: r.f64()?, seasonal: r.f64()?, residual: r.f64()? };
            let score = r.f64()?;
            let is_anomaly = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(CodecError::Invalid("bool tag")),
            };
            Ok(PointOutput::Scored { point, score, is_anomaly })
        }
        2 => Ok(PointOutput::Rejected),
        3 => Ok(PointOutput::Quarantined),
        _ => Err(CodecError::Invalid("output tag")),
    }
}

fn encode_stats(w: &mut Writer, s: &FleetStats) {
    w.u64(s.live as u64);
    w.u64(s.warming as u64);
    w.u64(s.rejected as u64);
    w.u64(s.quarantined as u64);
    w.u64(s.evicted);
    w.u64(s.admitted);
    w.u64(s.points);
    w.u64(s.anomalies);
    w.u64(s.shift_searches);
    w.u64(s.shift_trials);
    w.u64(s.z_alarms);
    w.u64(s.cusum_alarms);
    w.u64(s.forecast_alarms);
    w.u64(s.damp_alarms);
    w.u64(s.trend_alarms);
    w.u64(s.wal_retries);
    w.u64(s.shard_restarts);
    w.u64(s.undurable_batches);
    w.u64(s.cold_resident as u64);
    w.u64(s.spills);
    w.u64(s.rehydrations);
    w.u64(s.cold_errors);
    w.u32(s.shards.len() as u32);
    for sh in &s.shards {
        w.u32(sh.shard as u32);
        w.u64(sh.live as u64);
        w.u64(sh.warming as u64);
        w.u64(sh.rejected as u64);
        w.u64(sh.quarantined as u64);
        w.u64(sh.queue_depth as u64);
        w.u64(sh.evicted);
        w.u64(sh.admitted);
        w.u64(sh.points);
        w.u64(sh.anomalies);
        w.u64(sh.shift_searches);
        w.u64(sh.shift_trials);
        w.u64(sh.z_alarms);
        w.u64(sh.cusum_alarms);
        w.u64(sh.forecast_alarms);
        w.u64(sh.damp_alarms);
        w.u64(sh.trend_alarms);
        w.u64(sh.cold_resident as u64);
        w.u64(sh.spills);
        w.u64(sh.rehydrations);
        w.u64(sh.cold_errors);
    }
}

fn decode_stats(r: &mut Reader<'_>) -> Result<FleetStats, CodecError> {
    let mut s = FleetStats {
        live: r.u64()? as usize,
        warming: r.u64()? as usize,
        rejected: r.u64()? as usize,
        quarantined: r.u64()? as usize,
        evicted: r.u64()?,
        admitted: r.u64()?,
        points: r.u64()?,
        anomalies: r.u64()?,
        shift_searches: r.u64()?,
        shift_trials: r.u64()?,
        z_alarms: r.u64()?,
        cusum_alarms: r.u64()?,
        forecast_alarms: r.u64()?,
        damp_alarms: r.u64()?,
        trend_alarms: r.u64()?,
        wal_retries: r.u64()?,
        shard_restarts: r.u64()?,
        undurable_batches: r.u64()?,
        cold_resident: r.u64()? as usize,
        spills: r.u64()?,
        rehydrations: r.u64()?,
        cold_errors: r.u64()?,
        shards: Vec::new(),
    };
    // u32 shard + 20 × u64
    let n = checked_count(r, 164)?;
    s.shards.reserve(n);
    for _ in 0..n {
        s.shards.push(ShardStats {
            shard: r.u32()? as usize,
            live: r.u64()? as usize,
            warming: r.u64()? as usize,
            rejected: r.u64()? as usize,
            quarantined: r.u64()? as usize,
            queue_depth: r.u64()? as usize,
            evicted: r.u64()?,
            admitted: r.u64()?,
            points: r.u64()?,
            anomalies: r.u64()?,
            shift_searches: r.u64()?,
            shift_trials: r.u64()?,
            z_alarms: r.u64()?,
            cusum_alarms: r.u64()?,
            forecast_alarms: r.u64()?,
            damp_alarms: r.u64()?,
            trend_alarms: r.u64()?,
            cold_resident: r.u64()? as usize,
            spills: r.u64()?,
            rehydrations: r.u64()?,
            cold_errors: r.u64()?,
        });
    }
    Ok(s)
}

// -------------------------------------------------------------------------
// client / server errors
// -------------------------------------------------------------------------

/// Errors of the client side of the protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// Socket I/O failed (connection refused, reset, timed out, …).
    Io(String),
    /// The server's bytes did not form a valid frame (or its hello was
    /// wrong).
    Codec(CodecError),
    /// The server answered with an out-of-protocol frame (e.g. a request
    /// type as a reply).
    Protocol(&'static str),
    /// The server reported the request failed; carries its error text.
    Remote(String),
    /// The server rejected the batch whole — a shard queue was full.
    /// Nothing was applied; resubmit after draining or backing off.
    Backpressure {
        /// The shard whose queue was full.
        shard: usize,
    },
    /// A synchronous call was made while pipelined batches are still in
    /// flight; collect them with [`NetClient::drain`] first.
    InFlight,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(msg) => write!(f, "network i/o: {msg}"),
            NetError::Codec(e) => write!(f, "network frame: {e}"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
            NetError::Remote(msg) => write!(f, "server error: {msg}"),
            NetError::Backpressure { shard } => {
                write!(f, "server backpressure: shard {shard} queue is full")
            }
            NetError::InFlight => {
                write!(f, "pipelined batches in flight; drain them first")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

// -------------------------------------------------------------------------
// framed connection (shared by client and server)
// -------------------------------------------------------------------------

/// A TCP stream plus reassembly and write scratch buffers. Reads
/// accumulate into `rbuf` until [`decode_frame`] can cut a full frame;
/// writes reuse `wbuf` across frames.
struct FrameIo {
    stream: TcpStream,
    rbuf: Vec<u8>,
    /// Consumed prefix of `rbuf` (compacted lazily).
    start: usize,
    wbuf: Vec<u8>,
}

enum Fill {
    Data,
    WouldBlock,
    Eof,
}

impl FrameIo {
    fn new(stream: TcpStream) -> Self {
        FrameIo { stream, rbuf: Vec::new(), start: 0, wbuf: Vec::new() }
    }

    /// Cuts the next complete frame out of the reassembly buffer, if one
    /// is there.
    fn try_parse(&mut self) -> Result<Option<NetMessage>, CodecError> {
        match decode_frame(&self.rbuf[self.start..])? {
            None => Ok(None),
            Some((msg, used)) => {
                self.start += used;
                if self.start == self.rbuf.len() {
                    self.rbuf.clear();
                    self.start = 0;
                } else if self.start >= 64 * 1024 {
                    self.rbuf.drain(..self.start);
                    self.start = 0;
                }
                Ok(Some(msg))
            }
        }
    }

    /// One `read` into the reassembly buffer. In blocking mode a read
    /// timeout surfaces as [`Fill::WouldBlock`] so callers can check
    /// their shutdown flag and retry.
    fn fill(&mut self) -> io::Result<Fill> {
        let mut chunk = [0u8; 16 * 1024];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(Fill::Eof),
            Ok(n) => {
                self.rbuf.extend_from_slice(&chunk[..n]);
                Ok(Fill::Data)
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(Fill::WouldBlock)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(Fill::WouldBlock),
            Err(e) => Err(e),
        }
    }

    /// One non-blocking `read` — used by the server to decide whether
    /// more requests are already on the wire before it flushes replies.
    fn fill_nonblocking(&mut self) -> io::Result<Fill> {
        self.stream.set_nonblocking(true)?;
        let out = self.fill();
        self.stream.set_nonblocking(false)?;
        out
    }

    fn send(&mut self, msg: &NetMessage) -> io::Result<()> {
        let mut wbuf = std::mem::take(&mut self.wbuf);
        encode_frame_into(&mut wbuf, msg);
        let out = self.stream.write_all(&wbuf);
        self.wbuf = wbuf;
        out
    }
}

// -------------------------------------------------------------------------
// server
// -------------------------------------------------------------------------

/// A background thread serving a [`FleetEngine`] over TCP.
///
/// The engine moves into the server thread; connections are served one
/// at a time (the engine itself fans work out across its shard threads —
/// a second listener thread would only contend on it). Dropping the
/// handle (or calling [`NetServer::shutdown`]) stops the listener,
/// drains in-flight batches, and joins the thread.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serves `engine` on a background thread until shutdown.
    pub fn serve(addr: impl ToSocketAddrs, engine: FleetEngine) -> Result<Self, FleetError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| FleetError::Io(format!("bind: {e}")))?;
        let addr =
            listener.local_addr().map_err(|e| FleetError::Io(format!("local addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| FleetError::Io(format!("listener nonblocking: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("fleet-net".into())
            .spawn(move || accept_loop(listener, engine, &flag))
            .map_err(|_| FleetError::Internal("spawning the network accept thread"))?;
        Ok(NetServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address — the port to hand to [`NetClient::connect`]
    /// when the server was bound to port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins the server thread. In-flight batches
    /// of a live connection are drained first so the engine's shard
    /// workers shut down cleanly.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, mut engine: FleetEngine, stop: &AtomicBool) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                if serve_conn(&mut engine, stream, stop).is_err() {
                    // the engine is poisoned (a shard died unsupervised,
                    // or durability crash-stopped it): stop serving
                    // rather than answer every future request with errors
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Serves one connection. `Err` means the *engine* is unusable (fatal);
/// connection-level problems (bad hello, socket errors, codec errors)
/// just close the connection and return `Ok`.
fn serve_conn(
    engine: &mut FleetEngine,
    stream: TcpStream,
    stop: &AtomicBool,
) -> Result<(), FleetError> {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(Duration::from_millis(100))).is_err()
        || stream.set_write_timeout(Some(Duration::from_secs(10))).is_err()
    {
        return Ok(());
    }
    let mut io = FrameIo::new(stream);

    // hello: read the client's 10 bytes (tolerating short reads), verify,
    // echo ours back
    let mut hello = [0u8; 10];
    let mut got = 0;
    while got < hello.len() {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        match io.stream.read(&mut hello[got..]) {
            Ok(0) => return Ok(()),
            Ok(n) => got += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Ok(()),
        }
    }
    if check_hello(&hello).is_err() || io.stream.write_all(&hello_bytes()).is_err() {
        return Ok(());
    }

    let result = conn_loop(engine, &mut io, stop);
    // whatever ended the connection, leave no batch in flight: the next
    // connection (and engine shutdown) needs a clean pipeline
    while engine.in_flight() > 0 {
        let _ = engine.next_batch();
    }
    result
}

fn conn_loop(
    engine: &mut FleetEngine,
    io: &mut FrameIo,
    stop: &AtomicBool,
) -> Result<(), FleetError> {
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let msg = match io.try_parse() {
            Err(_) => {
                // the stream can never resync after a framing error
                let _ = io.send(&NetMessage::Error("malformed frame".into()));
                return Ok(());
            }
            Ok(Some(msg)) => msg,
            Ok(None) => {
                if engine.in_flight() > 0 {
                    // replies are owed: only read more if bytes are
                    // already on the wire, otherwise flush
                    match io.fill_nonblocking() {
                        Ok(Fill::Data) => {}
                        Ok(Fill::WouldBlock) => flush_replies(engine, io),
                        Ok(Fill::Eof) | Err(_) => return Ok(()),
                    }
                } else {
                    match io.fill() {
                        Ok(Fill::Data) => {}
                        Ok(Fill::WouldBlock) => {} // timeout: re-check stop
                        Ok(Fill::Eof) | Err(_) => return Ok(()),
                    }
                }
                continue;
            }
        };
        match msg {
            NetMessage::IngestBatch(records) => {
                if engine.in_flight() >= SERVER_WINDOW {
                    send_one_reply(engine, io);
                }
                match engine.submit(records) {
                    Ok(()) => {}
                    Err(FleetError::Backpressure { shard }) => {
                        // nothing was applied or logged; free the queues
                        // so the client's resubmit has room, then surface
                        // the typed rejection as this batch's reply
                        flush_replies(engine, io);
                        if io.send(&NetMessage::Backpressure { shard: shard as u32 }).is_err() {
                            return Ok(());
                        }
                    }
                    Err(e @ (FleetError::ShardDown | FleetError::Internal(_))) => {
                        let _ = io.send(&NetMessage::Error(e.to_string()));
                        return Err(e);
                    }
                    Err(e) => {
                        if io.send(&NetMessage::Error(e.to_string())).is_err() {
                            return Ok(());
                        }
                    }
                }
            }
            NetMessage::Forecast { keys, horizon } => {
                flush_replies(engine, io);
                let reply = match engine.forecast(&keys, horizon as usize) {
                    Ok(slots) => NetMessage::ForecastReply(slots),
                    Err(e) => NetMessage::Error(e.to_string()),
                };
                if io.send(&reply).is_err() {
                    return Ok(());
                }
            }
            NetMessage::Stats => {
                flush_replies(engine, io);
                let reply = match engine.stats() {
                    Ok(stats) => NetMessage::StatsReply(stats),
                    Err(e) => NetMessage::Error(e.to_string()),
                };
                if io.send(&reply).is_err() {
                    return Ok(());
                }
            }
            NetMessage::SetAdmitOptions { key, opts } => {
                flush_replies(engine, io);
                let reply = match engine.set_admit_options(key, opts) {
                    Ok(()) => NetMessage::Done,
                    Err(e) => NetMessage::Error(e.to_string()),
                };
                if io.send(&reply).is_err() {
                    return Ok(());
                }
            }
            // a reply type arriving as a request is a protocol violation
            _ => {
                let _ = io.send(&NetMessage::Error("unexpected frame type".into()));
                return Ok(());
            }
        }
    }
}

/// Answers the oldest in-flight batch with its `Scored` frame (or a
/// per-batch `Error` if its shards failed — supervision heals what it
/// can, the connection stays up, and a truly poisoned engine surfaces on
/// the next submit).
fn send_one_reply(engine: &mut FleetEngine, io: &mut FrameIo) {
    let reply = match engine.next_batch() {
        Ok(Some(points)) => NetMessage::Scored(points),
        Ok(None) => return,
        Err(e) => NetMessage::Error(e.to_string()),
    };
    let _ = io.send(&reply);
}

fn flush_replies(engine: &mut FleetEngine, io: &mut FrameIo) {
    while engine.in_flight() > 0 {
        send_one_reply(engine, io);
    }
}

// -------------------------------------------------------------------------
// client
// -------------------------------------------------------------------------

/// Blocking client of a [`NetServer`].
///
/// [`NetClient::ingest`] is the synchronous one-batch round trip;
/// [`NetClient::submit`] / [`NetClient::drain`] pipeline up to a small
/// window of batches to hide the per-frame latency, mirroring
/// [`FleetEngine::submit`] / [`FleetEngine::next_batch`] in-process.
pub struct NetClient {
    io: FrameIo,
    in_flight: VecDeque<()>,
}

impl NetClient {
    /// Connects and performs the protocol hello.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        let mut io = FrameIo::new(stream);
        io.stream.write_all(&hello_bytes())?;
        let mut hello = [0u8; 10];
        io.stream.read_exact(&mut hello)?;
        check_hello(&hello)?;
        Ok(NetClient { io, in_flight: VecDeque::new() })
    }

    /// Ingests one batch synchronously: one request frame, one reply
    /// frame. Fails with [`NetError::InFlight`] when pipelined batches
    /// are uncollected.
    pub fn ingest(&mut self, batch: Vec<Record>) -> Result<Vec<ScoredPoint>, NetError> {
        if !self.in_flight.is_empty() {
            return Err(NetError::InFlight);
        }
        self.io.send(&NetMessage::IngestBatch(batch))?;
        self.recv_scored()
    }

    /// Pipelines one batch. When the window (a handful of batches, kept
    /// below the server's) is full, first collects the oldest reply and
    /// returns it — so the call doubles as the drain and no scored
    /// points are ever dropped. A returned [`NetError::Backpressure`] or
    /// [`NetError::Remote`] belongs to that *oldest* batch; the one just
    /// passed was still sent.
    pub fn submit(&mut self, batch: Vec<Record>) -> Result<Option<Vec<ScoredPoint>>, NetError> {
        let drained = if self.in_flight.len() >= CLIENT_WINDOW {
            self.in_flight.pop_front();
            let scored = self.recv_scored()?;
            Some(scored)
        } else {
            None
        };
        self.io.send(&NetMessage::IngestBatch(batch))?;
        self.in_flight.push_back(());
        Ok(drained)
    }

    /// Collects the oldest in-flight reply, or `Ok(None)` when nothing
    /// is in flight.
    pub fn drain(&mut self) -> Result<Option<Vec<ScoredPoint>>, NetError> {
        if self.in_flight.pop_front().is_none() {
            return Ok(None);
        }
        self.recv_scored().map(Some)
    }

    /// Forecasts `1..=horizon` steps ahead for each key (see
    /// [`FleetEngine::forecast`]). Requires an empty pipeline.
    pub fn forecast(
        &mut self,
        keys: &[SeriesKey],
        horizon: u32,
    ) -> Result<Vec<Option<Vec<f64>>>, NetError> {
        if !self.in_flight.is_empty() {
            return Err(NetError::InFlight);
        }
        self.io.send(&NetMessage::Forecast { keys: keys.to_vec(), horizon })?;
        match self.recv_reply()? {
            NetMessage::ForecastReply(slots) => Ok(slots),
            NetMessage::Error(msg) => Err(NetError::Remote(msg)),
            _ => Err(NetError::Protocol("expected a forecast reply")),
        }
    }

    /// Fetches engine statistics. Requires an empty pipeline.
    pub fn stats(&mut self) -> Result<FleetStats, NetError> {
        if !self.in_flight.is_empty() {
            return Err(NetError::InFlight);
        }
        self.io.send(&NetMessage::Stats)?;
        match self.recv_reply()? {
            NetMessage::StatsReply(stats) => Ok(stats),
            NetMessage::Error(msg) => Err(NetError::Remote(msg)),
            _ => Err(NetError::Protocol("expected a stats reply")),
        }
    }

    /// Registers per-series admission overrides (see
    /// [`FleetEngine::set_admit_options`]). Requires an empty pipeline.
    pub fn set_admit_options(
        &mut self,
        key: impl Into<SeriesKey>,
        opts: AdmitOptions,
    ) -> Result<(), NetError> {
        if !self.in_flight.is_empty() {
            return Err(NetError::InFlight);
        }
        self.io.send(&NetMessage::SetAdmitOptions { key: key.into(), opts })?;
        match self.recv_reply()? {
            NetMessage::Done => Ok(()),
            NetMessage::Error(msg) => Err(NetError::Remote(msg)),
            _ => Err(NetError::Protocol("expected an acknowledgement")),
        }
    }

    /// Batches currently pipelined and awaiting [`NetClient::drain`].
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    fn recv_scored(&mut self) -> Result<Vec<ScoredPoint>, NetError> {
        match self.recv_reply()? {
            NetMessage::Scored(points) => Ok(points),
            NetMessage::Backpressure { shard } => {
                Err(NetError::Backpressure { shard: shard as usize })
            }
            NetMessage::Error(msg) => Err(NetError::Remote(msg)),
            _ => Err(NetError::Protocol("expected a scored-batch reply")),
        }
    }

    fn recv_reply(&mut self) -> Result<NetMessage, NetError> {
        loop {
            if let Some(msg) = self.io.try_parse()? {
                return Ok(msg);
            }
            match self.io.fill()? {
                Fill::Data | Fill::WouldBlock => {}
                Fill::Eof => return Err(NetError::Io("server closed the connection".into())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: NetMessage) {
        let frame = encode_frame(&msg);
        assert_eq!(decode_frame_exact(&frame).unwrap(), msg);
        // the streaming decoder agrees and reports the exact length
        let (m2, used) = decode_frame(&frame).unwrap().unwrap();
        assert_eq!(m2, msg);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn every_message_roundtrips() {
        roundtrip(NetMessage::IngestBatch(vec![
            Record::new("host-1/cpu", 7, 1.5),
            Record::new("host-2/mem", 8, -2.25),
        ]));
        roundtrip(NetMessage::IngestBatch(Vec::new()));
        roundtrip(NetMessage::Forecast {
            keys: vec![SeriesKey::new("a"), SeriesKey::new("b")],
            horizon: 12,
        });
        roundtrip(NetMessage::Stats);
        roundtrip(NetMessage::SetAdmitOptions {
            key: SeriesKey::new("tenant/series"),
            opts: AdmitOptions { lambda: Some(2.0), period: Some(48), ..Default::default() },
        });
        roundtrip(NetMessage::Scored(vec![
            ScoredPoint {
                key: SeriesKey::new("k"),
                t: 9,
                value: 3.5,
                output: PointOutput::Warming { buffered: 3, needed: Some(144) },
            },
            ScoredPoint {
                key: SeriesKey::new("k"),
                t: 10,
                value: -1.0,
                output: PointOutput::Scored {
                    point: DecompPoint { trend: 1.0, seasonal: -0.5, residual: 0.25 },
                    score: 4.5,
                    is_anomaly: true,
                },
            },
            ScoredPoint {
                key: SeriesKey::new("r"),
                t: 11,
                value: 0.0,
                output: PointOutput::Rejected,
            },
            ScoredPoint {
                key: SeriesKey::new("q"),
                t: 12,
                value: 0.0,
                output: PointOutput::Quarantined,
            },
        ]));
        roundtrip(NetMessage::ForecastReply(vec![
            None,
            Some(vec![1.0, 2.0, 3.0]),
            Some(Vec::new()),
        ]));
        roundtrip(NetMessage::StatsReply(FleetStats {
            live: 2,
            points: 77,
            shards: vec![
                ShardStats { shard: 0, live: 1, points: 40, ..Default::default() },
                ShardStats { shard: 1, live: 1, points: 37, ..Default::default() },
            ],
            ..Default::default()
        }));
        roundtrip(NetMessage::Done);
        roundtrip(NetMessage::Backpressure { shard: 3 });
        roundtrip(NetMessage::Error("shard 2 queue is full".into()));
    }

    #[test]
    fn nan_values_roundtrip_by_bit_pattern() {
        let msg = NetMessage::IngestBatch(vec![Record::new("k", 0, f64::NAN)]);
        let frame = encode_frame(&msg);
        match decode_frame_exact(&frame).unwrap() {
            NetMessage::IngestBatch(recs) => {
                assert_eq!(recs[0].value.to_bits(), f64::NAN.to_bits());
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn hello_is_validated() {
        assert_eq!(check_hello(&hello_bytes()), Ok(()));
        let mut bad_magic = hello_bytes();
        bad_magic[0] ^= 0xFF;
        assert_eq!(check_hello(&bad_magic), Err(CodecError::BadMagic));
        // right magic, garbage after it: a future (or corrupt) version is
        // rejected as unsupported, not misparsed
        let mut bad_version = hello_bytes();
        bad_version[8] = 0xEE;
        bad_version[9] = 0xBE;
        assert_eq!(check_hello(&bad_version), Err(CodecError::UnsupportedVersion(0xBEEE)));
    }

    #[test]
    fn streaming_decoder_waits_for_partial_frames() {
        let frame = encode_frame(&NetMessage::Backpressure { shard: 1 });
        for cut in 0..frame.len() {
            assert_eq!(decode_frame(&frame[..cut]).unwrap(), None, "prefix of {cut} bytes");
        }
        // two frames back to back: the first cut consumes exactly one
        let mut two = frame.clone();
        two.extend_from_slice(&frame);
        let (msg, used) = decode_frame(&two).unwrap().unwrap();
        assert_eq!(msg, NetMessage::Backpressure { shard: 1 });
        assert_eq!(used, frame.len());
        let (msg2, _) = decode_frame(&two[used..]).unwrap().unwrap();
        assert_eq!(msg2, msg);
    }

    #[test]
    fn corrupt_frames_are_typed_errors() {
        let frame = encode_frame(&NetMessage::Error("x".into()));
        // flipping any single byte must never produce the original
        // message silently: either the CRC catches it, or (in the length
        // prefix) the decoder waits for more / rejects the length
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            if let Ok(Some((msg, _))) = decode_frame(&bad) {
                assert_ne!(msg, NetMessage::Error("x".into()));
            }
        }
        // oversized length prefix: rejected before allocation
        let mut huge = frame.clone();
        huge[..4].copy_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert_eq!(decode_frame(&huge), Err(CodecError::Invalid("frame length")));
        // zero-length payload can't even hold a type tag
        let mut empty = frame;
        empty[..4].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(decode_frame(&empty), Err(CodecError::Invalid("frame length")));
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // a Scored frame claiming u32::MAX points in a 16-byte payload:
        // the count check fires before any Vec::with_capacity
        let mut w = Writer::default();
        w.u8(T_SCORED);
        w.u32(u32::MAX);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(w.buf.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&w.buf).to_le_bytes());
        frame.extend_from_slice(&w.buf);
        assert_eq!(decode_frame(&frame), Err(CodecError::Invalid("element count")));
    }

    #[test]
    fn trailing_garbage_after_payload_is_rejected() {
        // a frame whose declared length covers more bytes than the body
        // parses: the strict payload-length check fires
        let mut w = Writer::default();
        w.u8(T_DONE);
        w.u8(0xAB); // extra byte the Done body never reads
        let mut frame = Vec::new();
        frame.extend_from_slice(&(w.buf.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&w.buf).to_le_bytes());
        frame.extend_from_slice(&w.buf);
        assert_eq!(decode_frame(&frame), Err(CodecError::Invalid("frame payload length")));
    }
}
