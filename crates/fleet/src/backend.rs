//! Pluggable detection backends: alternative (and ensemble) verdicts on
//! top of the always-on decomposition + fused residual scorer.
//!
//! Every live series decomposes its stream and scores the residual with
//! the fused [`oneshotstl::ResidualScorer`] — that pipeline is the
//! baseline and never goes away. A **backend** is an additional streaming
//! detector consuming the same [`DecompPoint`]s, selected per fleet
//! ([`crate::FleetConfig::backend`]) or per series
//! ([`crate::AdmitOptions::backend`]) and baked in at promotion like
//! every other admission-time override:
//!
//! - [`BackendSelect::Fused`] (default): no extra detector — the fused
//!   scorer's verdict is the series verdict, bit-identical to every
//!   pre-v7 fleet.
//! - [`BackendSelect::Damp`]: a windowed streaming DAMP
//!   ([`anomaly::StreamingDamp`], Lu et al. KDD 2022) over the
//!   *residual* channel; its raw discord distances are standardized by
//!   a dedicated [`NSigma`] normalizer so its scores live in the same z
//!   units as every other detector.
//! - [`BackendSelect::TrendCusum`]: the trend-innovation CUSUM
//!   ([`oneshotstl::TrendCusum`]) over the *trend* channel — catches
//!   level shifts the adaptive trend absorbs before the residual ever
//!   sees them.
//! - [`BackendSelect::Ensemble`]: DAMP + trend CUSUM + the fused scorer
//!   fused into one verdict, by [`EnsembleFusion::Max`] (most-alarmed
//!   member wins; verdicts OR) or [`EnsembleFusion::WeightedRank`]
//!   (weight-averaged z-comparable scores; weighted majority vote).
//!
//! The streaming contract is the [`DetectorBackend`] trait:
//! `observe(&DecompPoint) -> BackendScore`, zero heap allocations in
//! steady state (pinned by `crates/fleet/tests/zero_alloc.rs`), and
//! plain-data snapshots that restore **bit-identically** (codec v7,
//! including WAL crash recovery). [`SeriesBackend`] is the closed enum
//! the fleet actually dispatches and serializes; the ensemble lives
//! there rather than behind the trait because its fusion needs the
//! fused scorer's verdict for the same point, which only the series
//! step has.

use anomaly::{StreamingDamp, StreamingDampState};
use oneshotstl::{NSigma, NSigmaState, ScoreConfig, ScoreVerdict, TrendCusum, TrendCusumState};
use tskit::series::DecompPoint;

/// How many real (post-DAMP-warm-up) discord distances a
/// [`DampBackend`]'s normalizer absorbs silently before scoring: raw
/// distances have an arbitrary scale, and standardizing against one or
/// two observations would emit sentinel alarms on normal data.
const DAMP_NORM_WARMUP: u32 = 16;

/// One backend's verdict for one decomposed point: a z-comparable score
/// (higher = more anomalous) and an instantaneous anomaly flag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendScore {
    /// Anomaly score in z units (comparable across backends).
    pub score: f64,
    /// Instantaneous verdict (never held/smeared).
    pub is_anomaly: bool,
}

impl BackendScore {
    /// The all-quiet verdict (warm-up, guarded input).
    fn quiet() -> Self {
        BackendScore { score: 0.0, is_anomaly: false }
    }
}

/// The streaming contract of a detection backend: score one decomposed
/// point, `O(1)` amortized and **allocation-free** in steady state.
///
/// Implementations must also provide plain-data state extraction and
/// validated restoration so their stream continues bit-identically
/// across snapshot/restore (see [`DampBackend::to_state`] /
/// [`DampBackend::from_state`] for the shape) — the trait itself stays
/// object-safe and minimal. The ensemble is deliberately *not* a leaf
/// backend: it composes leaf backends with the always-on fused scorer
/// verdict, which only the series step has, so it lives in
/// [`SeriesBackend::observe`].
pub trait DetectorBackend {
    /// Scores one decomposed point and absorbs it into the running
    /// state.
    fn observe(&mut self, point: &DecompPoint) -> BackendScore;
}

// ───────────────────────── configuration ──────────────────────────────

/// Which detection backend a series runs (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BackendSelect {
    /// No extra detector: the fused residual scorer's verdict is the
    /// series verdict (the pre-v7 pipeline, bit-identical).
    #[default]
    Fused,
    /// Windowed streaming DAMP over the residual channel.
    Damp(DampOptions),
    /// Trend-innovation CUSUM over the trend channel, with its own
    /// [`ScoreConfig`] (CUSUM k/h, hold, fusion — same vocabulary as
    /// the residual scorer).
    TrendCusum(ScoreConfig),
    /// DAMP + trend CUSUM + fused scorer, fused into one verdict.
    Ensemble(EnsembleOptions),
}

impl BackendSelect {
    /// Validates the selection, returning a message for the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            BackendSelect::Fused => Ok(()),
            BackendSelect::Damp(d) => d.validate(),
            BackendSelect::TrendCusum(s) => s.validate(),
            BackendSelect::Ensemble(e) => e.validate(),
        }
    }
}

/// Options of the streaming DAMP backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DampOptions {
    /// History bound: discord search reads at most the last `window`
    /// residuals.
    pub window: u32,
    /// Subsequence length `m`; `0` derives it from the series' detected
    /// period at promotion (`period.clamp(8, 64)`), which is the
    /// recommended setting.
    pub subseq: u32,
}

impl Default for DampOptions {
    fn default() -> Self {
        DampOptions { window: 256, subseq: 0 }
    }
}

impl DampOptions {
    /// Validates the options (the derived `subseq = 0` form is always
    /// resolvable; an explicit `m` must fit its window).
    pub fn validate(&self) -> Result<(), String> {
        if !(16..=1 << 20).contains(&self.window) {
            return Err(format!("DAMP window must be in [16, 2^20], got {}", self.window));
        }
        if self.subseq != 0 {
            if self.subseq < 4 {
                return Err(format!(
                    "DAMP subseq must be 0 (derive) or >= 4, got {}",
                    self.subseq
                ));
            }
            if self.window < 2 * self.subseq + 1 {
                return Err(format!(
                    "DAMP window {} too small for subseq {} (needs >= 2m + 1)",
                    self.window, self.subseq
                ));
            }
        }
        Ok(())
    }

    /// The subsequence length a series with this detected `period`
    /// runs: the explicit override, or the derived-and-clamped period —
    /// always small enough for the window, so construction cannot fail.
    fn resolve_subseq(&self, period: usize) -> usize {
        let m = if self.subseq > 0 { self.subseq as usize } else { period.clamp(8, 64) };
        m.clamp(4, (self.window as usize - 1) / 2)
    }
}

/// How an ensemble combines its members' z-comparable scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnsembleFusion {
    /// The most-alarmed member wins: `score = max(members)`, verdict =
    /// OR of member verdicts. Preserves each member's sensitivity in
    /// full; the shipped default.
    #[default]
    Max,
    /// Weight-averaged score (`Σ wᵢ sᵢ / Σ wᵢ` over z-comparable member
    /// scores) and a weighted majority vote on the verdict (alarm when
    /// the alarming members hold at least half the total weight).
    /// Trades single-member sensitivity for robustness to one noisy
    /// member.
    WeightedRank,
}

/// Options of the ensemble backend: member configs, fusion rule, and
/// member weights `[fused, damp, trend]` (used by
/// [`EnsembleFusion::WeightedRank`]; [`EnsembleFusion::Max`] ignores
/// them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleOptions {
    /// DAMP member options.
    pub damp: DampOptions,
    /// Trend-CUSUM member scoring config.
    pub trend: ScoreConfig,
    /// Fusion rule.
    pub fusion: EnsembleFusion,
    /// Member weights `[fused, damp, trend]`.
    pub weights: [f64; 3],
}

impl Default for EnsembleOptions {
    /// The shipped ensemble: max fusion over the fused scorer, a
    /// derived-subsequence DAMP, and the default trend CUSUM — the
    /// configuration the `tsad_ablation` CI gate pins (within 1%
    /// VUS-ROC of the fused scorer on IOPS and ECG).
    fn default() -> Self {
        EnsembleOptions {
            damp: DampOptions::default(),
            trend: ScoreConfig::default(),
            fusion: EnsembleFusion::Max,
            weights: [1.0, 1.0, 1.0],
        }
    }
}

impl EnsembleOptions {
    /// Validates member configs, fusion rule, and weights.
    pub fn validate(&self) -> Result<(), String> {
        self.damp.validate()?;
        self.trend.validate()?;
        if self.weights.iter().any(|w| !(w.is_finite() && *w >= 0.0)) {
            return Err(format!(
                "ensemble weights must be finite and >= 0, got {:?}",
                self.weights
            ));
        }
        if self.weights.iter().sum::<f64>() <= 0.0 {
            return Err("ensemble weights must not all be zero".into());
        }
        Ok(())
    }
}

// ─────────────────────────── leaf backends ────────────────────────────

/// Streaming DAMP over the residual channel, standardized into z units.
///
/// Raw discord distances depend on the subsequence length and the
/// stream's shape, so thresholding them directly is meaningless. This
/// backend feeds each distance through its own [`NSigma`] normalizer
/// (running mean/σ of the distance stream) and scores the point by the
/// *positive* standardized deviation — an unusually **large** discord
/// distance is anomalous; an unusually small one is just a very normal
/// pattern and clamps to zero rather than alarming.
#[derive(Debug, Clone)]
pub struct DampBackend {
    damp: StreamingDamp,
    /// Normalizer over the raw distance stream (threshold = task
    /// NSigma bar).
    norm: NSigma,
    /// Real distances still to absorb silently (see
    /// [`DAMP_NORM_WARMUP`]).
    warmup_left: u32,
    /// Lifetime alarms (diagnostics, not serialized — resets on
    /// restore).
    alarms: u64,
}

impl DampBackend {
    /// Builds the backend for a series with detected `period`,
    /// alarming above the z bar `n`. `opts` must have passed
    /// [`DampOptions::validate`]; construction is then infallible.
    pub fn new(opts: DampOptions, n: f64, period: usize) -> Self {
        let m = opts.resolve_subseq(period);
        let damp = StreamingDamp::new(opts.window as usize, m)
            .expect("validated DampOptions always construct");
        DampBackend { damp, norm: NSigma::new(n), warmup_left: DAMP_NORM_WARMUP, alarms: 0 }
    }

    /// Lifetime alarm count (resets on snapshot restore).
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Read-only view of the wrapped streaming DAMP.
    pub fn damp(&self) -> &StreamingDamp {
        &self.damp
    }

    /// Extracts a plain-data snapshot.
    pub fn to_state(&self) -> DampBackendState {
        DampBackendState {
            damp: self.damp.to_state(),
            norm: self.norm.to_state(),
            warmup_left: self.warmup_left,
        }
    }

    /// Rebuilds from [`DampBackend::to_state`] output, validating every
    /// field; the stream continues bit-identically (alarm counter
    /// resets).
    pub fn from_state(state: DampBackendState) -> Result<Self, String> {
        let damp = StreamingDamp::from_state(state.damp)?;
        if !(state.norm.n.is_finite() && state.norm.n > 0.0) {
            return Err(format!("DAMP normalizer bar must be positive, got {}", state.norm.n));
        }
        if !(state.norm.sum.is_finite() && state.norm.sum_sq.is_finite()) {
            return Err("DAMP normalizer sums must be finite".into());
        }
        Ok(DampBackend {
            damp,
            norm: NSigma::from_state(state.norm),
            warmup_left: state.warmup_left,
            alarms: 0,
        })
    }
}

impl DetectorBackend for DampBackend {
    fn observe(&mut self, point: &DecompPoint) -> BackendScore {
        if !point.residual.is_finite() {
            return BackendScore::quiet();
        }
        let d = self.damp.observe(point.residual);
        if d == 0.0 {
            // DAMP's own warm-up (or a hard-pruned zero): nothing to
            // standardize yet
            return BackendScore::quiet();
        }
        if self.warmup_left > 0 {
            self.warmup_left -= 1;
            self.norm.absorb(d);
            return BackendScore::quiet();
        }
        let z = self.norm.zscore(d);
        self.norm.absorb(d);
        let is_anomaly = z > self.norm.n;
        self.alarms += is_anomaly as u64;
        BackendScore { score: z.max(0.0), is_anomaly }
    }
}

impl DetectorBackend for TrendCusum {
    fn observe(&mut self, point: &DecompPoint) -> BackendScore {
        let v = self.update(point.trend);
        BackendScore { score: v.score, is_anomaly: v.is_anomaly }
    }
}

/// Plain-data snapshot of a [`DampBackend`].
#[derive(Debug, Clone, PartialEq)]
pub struct DampBackendState {
    /// Streaming DAMP state (window, subseq, retained values, bsf).
    pub damp: StreamingDampState,
    /// Distance normalizer statistics.
    pub norm: NSigmaState,
    /// Remaining silent-absorption budget.
    pub warmup_left: u32,
}

// ───────────────────────── series dispatch ────────────────────────────

/// The concrete backend a live series runs: the closed set the shard
/// dispatches (statically) and the codec serializes (v7). `None` at the
/// [`crate::series`] layer means [`BackendSelect::Fused`] — no extra
/// state, no extra work, and what every pre-v7 snapshot decodes to.
#[derive(Debug, Clone)]
pub enum SeriesBackend {
    /// Windowed streaming DAMP over the residual channel.
    Damp(DampBackend),
    /// Trend-innovation CUSUM over the trend channel.
    TrendCusum(TrendCusum),
    /// DAMP + trend CUSUM members fused with the residual scorer's
    /// verdict.
    Ensemble {
        /// DAMP member.
        damp: DampBackend,
        /// Trend-CUSUM member.
        trend: TrendCusum,
        /// Fusion rule.
        fusion: EnsembleFusion,
        /// Member weights `[fused, damp, trend]`.
        weights: [f64; 3],
    },
}

impl SeriesBackend {
    /// Builds the backend a promoting series selected, or `None` for
    /// [`BackendSelect::Fused`]. `n` is the task NSigma bar (already
    /// per-series resolved), `period` the detected period.
    pub fn build(select: BackendSelect, n: f64, period: usize) -> Option<Self> {
        match select {
            BackendSelect::Fused => None,
            BackendSelect::Damp(opts) => {
                Some(SeriesBackend::Damp(DampBackend::new(opts, n, period)))
            }
            BackendSelect::TrendCusum(score) => {
                Some(SeriesBackend::TrendCusum(TrendCusum::new(n, score)))
            }
            BackendSelect::Ensemble(e) => Some(SeriesBackend::Ensemble {
                damp: DampBackend::new(e.damp, n, period),
                trend: TrendCusum::new(n, e.trend),
                fusion: e.fusion,
                weights: e.weights,
            }),
        }
    }

    /// Scores one decomposed point. `fused` is the residual scorer's
    /// verdict for the same point — the ensemble's third member; leaf
    /// backends ignore it. The returned verdict *replaces* the fused
    /// one as the series verdict (the ensemble folds the fused member
    /// back in; leaf backends stand alone by selection).
    pub fn observe(&mut self, point: &DecompPoint, fused: &ScoreVerdict) -> BackendScore {
        match self {
            SeriesBackend::Damp(d) => d.observe(point),
            SeriesBackend::TrendCusum(t) => DetectorBackend::observe(t, point),
            SeriesBackend::Ensemble { damp, trend, fusion, weights } => {
                let d = damp.observe(point);
                let t = DetectorBackend::observe(trend, point);
                let f = BackendScore { score: fused.score, is_anomaly: fused.is_anomaly };
                match fusion {
                    EnsembleFusion::Max => BackendScore {
                        score: f.score.max(d.score).max(t.score),
                        is_anomaly: f.is_anomaly || d.is_anomaly || t.is_anomaly,
                    },
                    EnsembleFusion::WeightedRank => {
                        let [wf, wd, wt] = *weights;
                        let total = wf + wd + wt;
                        let score = (wf * f.score + wd * d.score + wt * t.score) / total;
                        let alarmed = wf * (f.is_anomaly as u8 as f64)
                            + wd * (d.is_anomaly as u8 as f64)
                            + wt * (t.is_anomaly as u8 as f64);
                        BackendScore { score, is_anomaly: alarmed >= 0.5 * total }
                    }
                }
            }
        }
    }

    /// Lifetime `(damp alarms, trend alarms)` of this backend's members
    /// (diagnostics — reset on snapshot restore, like every other
    /// diagnostic counter). Trend alarms count both the z and the CUSUM
    /// channel of the innovation scorer.
    pub fn alarm_counts(&self) -> (u64, u64) {
        match self {
            SeriesBackend::Damp(d) => (d.alarms(), 0),
            SeriesBackend::TrendCusum(t) => {
                let (z, c) = t.alarm_counts();
                (0, z + c)
            }
            SeriesBackend::Ensemble { damp, trend, .. } => {
                let (z, c) = trend.alarm_counts();
                (damp.alarms(), z + c)
            }
        }
    }

    /// Extracts a plain-data snapshot for serialization.
    pub fn to_snapshot(&self) -> BackendSnapshot {
        match self {
            SeriesBackend::Damp(d) => BackendSnapshot::Damp(d.to_state()),
            SeriesBackend::TrendCusum(t) => BackendSnapshot::TrendCusum(t.to_state()),
            SeriesBackend::Ensemble { damp, trend, fusion, weights } => {
                BackendSnapshot::Ensemble {
                    damp: damp.to_state(),
                    trend: trend.to_state(),
                    fusion: *fusion,
                    weights: *weights,
                }
            }
        }
    }

    /// Rebuilds from [`SeriesBackend::to_snapshot`] output, validating
    /// every field (snapshots cross a serialization boundary); the
    /// stream continues bit-identically.
    pub fn from_snapshot(snap: BackendSnapshot) -> Result<Self, String> {
        match snap {
            BackendSnapshot::Damp(s) => Ok(SeriesBackend::Damp(DampBackend::from_state(s)?)),
            BackendSnapshot::TrendCusum(s) => {
                validate_trend_state(&s)?;
                Ok(SeriesBackend::TrendCusum(TrendCusum::from_state(s)))
            }
            BackendSnapshot::Ensemble { damp, trend, fusion, weights } => {
                validate_trend_state(&trend)?;
                if weights.iter().any(|w| !(w.is_finite() && *w >= 0.0))
                    || weights.iter().sum::<f64>() <= 0.0
                {
                    return Err(format!("degenerate ensemble weights {weights:?}"));
                }
                Ok(SeriesBackend::Ensemble {
                    damp: DampBackend::from_state(damp)?,
                    trend: TrendCusum::from_state(trend),
                    fusion,
                    weights,
                })
            }
        }
    }
}

/// Range checks on a decoded [`TrendCusumState`] (its inner scorer
/// state is range-checked by the codec's shared scorer decoder; this
/// covers the wrapper's own fields).
fn validate_trend_state(s: &TrendCusumState) -> Result<(), String> {
    if s.has_prev && !s.prev.is_finite() {
        return Err(format!("trend CUSUM prev must be finite, got {}", s.prev));
    }
    Ok(())
}

/// Plain-data snapshot of a [`SeriesBackend`].
#[derive(Debug, Clone, PartialEq)]
pub enum BackendSnapshot {
    /// DAMP backend state.
    Damp(DampBackendState),
    /// Trend-CUSUM backend state.
    TrendCusum(TrendCusumState),
    /// Ensemble state: both members plus the fusion rule.
    Ensemble {
        /// DAMP member state.
        damp: DampBackendState,
        /// Trend-CUSUM member state.
        trend: TrendCusumState,
        /// Fusion rule.
        fusion: EnsembleFusion,
        /// Member weights `[fused, damp, trend]`.
        weights: [f64; 3],
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(trend: f64, residual: f64) -> DecompPoint {
        DecompPoint { trend, seasonal: 0.0, residual }
    }

    fn residual_stream(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (2.0 * std::f64::consts::PI * i as f64 / 16.0).sin() * 0.2
                    + 0.05 * (((i * 37) % 100) as f64 / 50.0 - 1.0)
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(BackendSelect::default().validate().is_ok());
        assert!(BackendSelect::Damp(DampOptions::default()).validate().is_ok());
        assert!(BackendSelect::TrendCusum(ScoreConfig::default()).validate().is_ok());
        assert!(BackendSelect::Ensemble(EnsembleOptions::default()).validate().is_ok());

        let tiny = DampOptions { window: 8, subseq: 0 };
        assert!(BackendSelect::Damp(tiny).validate().is_err());
        let mismatched = DampOptions { window: 16, subseq: 12 };
        assert!(BackendSelect::Damp(mismatched).validate().is_err());
        let bad_trend = ScoreConfig { cusum_h: 0.0, ..Default::default() };
        assert!(BackendSelect::TrendCusum(bad_trend).validate().is_err());
        let bad_weights = EnsembleOptions { weights: [0.0, 0.0, 0.0], ..Default::default() };
        assert!(BackendSelect::Ensemble(bad_weights).validate().is_err());
        let nan_weights =
            EnsembleOptions { weights: [1.0, f64::NAN, 1.0], ..Default::default() };
        assert!(BackendSelect::Ensemble(nan_weights).validate().is_err());
    }

    /// Derived subsequence lengths always fit their window, whatever
    /// the detected period.
    #[test]
    fn derived_subseq_always_constructs() {
        for period in [0usize, 1, 7, 24, 100, 10_000] {
            for window in [16u32, 64, 256] {
                let opts = DampOptions { window, subseq: 0 };
                opts.validate().unwrap();
                let b = DampBackend::new(opts, 5.0, period);
                assert!(b.damp().subseq_len() >= 4);
                assert!(window as usize > 2 * b.damp().subseq_len());
            }
        }
    }

    /// A residual discord alarms the DAMP backend after warm-up; a
    /// clean periodic residual does not.
    #[test]
    fn damp_backend_flags_a_residual_discord() {
        let mut b = DampBackend::new(DampOptions { window: 128, subseq: 16 }, 5.0, 16);
        let xs = residual_stream(400);
        let mut alarmed_before = 0u64;
        for &r in &xs[..300] {
            b.observe(&point(0.0, r));
        }
        alarmed_before += b.alarms();
        // a flat run unlike anything the window has seen
        let mut max_score = 0.0f64;
        for _ in 0..16 {
            let v = b.observe(&point(0.0, 1.8));
            max_score = max_score.max(v.score);
        }
        assert!(b.alarms() > alarmed_before, "the discord must alarm (max score {max_score})");
    }

    /// Backend snapshots restore bit-identically, for every variant.
    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        let selects = [
            BackendSelect::Damp(DampOptions { window: 64, subseq: 8 }),
            BackendSelect::TrendCusum(ScoreConfig::default()),
            BackendSelect::Ensemble(EnsembleOptions::default()),
            BackendSelect::Ensemble(EnsembleOptions {
                fusion: EnsembleFusion::WeightedRank,
                weights: [2.0, 1.0, 0.5],
                ..Default::default()
            }),
        ];
        let xs = residual_stream(300);
        let fused = ScoreVerdict { score: 0.3, z: 0.3, cusum: 0.1, is_anomaly: false };
        for select in selects {
            let mut a = SeriesBackend::build(select, 5.0, 16).unwrap();
            for (i, &r) in xs[..200].iter().enumerate() {
                a.observe(&point(1.0 + 0.01 * i as f64, r), &fused);
            }
            let mut b = SeriesBackend::from_snapshot(a.to_snapshot()).unwrap();
            assert_eq!(a.to_snapshot(), b.to_snapshot());
            for (i, &r) in xs[200..].iter().enumerate() {
                let p = point(3.0 + 0.02 * i as f64, r);
                let (va, vb) = (a.observe(&p, &fused), b.observe(&p, &fused));
                assert_eq!(va.score.to_bits(), vb.score.to_bits(), "{select:?} at {i}");
                assert_eq!(va.is_anomaly, vb.is_anomaly);
            }
        }
    }

    /// Degenerate snapshots are rejected with a message, never panic.
    #[test]
    fn degenerate_snapshots_are_rejected() {
        let mut b =
            SeriesBackend::build(BackendSelect::Ensemble(EnsembleOptions::default()), 5.0, 16)
                .unwrap();
        let fused = ScoreVerdict { score: 0.0, z: 0.0, cusum: 0.0, is_anomaly: false };
        for &r in &residual_stream(100) {
            b.observe(&point(0.0, r), &fused);
        }
        let good = b.to_snapshot();
        let BackendSnapshot::Ensemble { damp, trend, fusion, weights } = good else {
            unreachable!()
        };
        let mut bad_damp = damp.clone();
        bad_damp.damp.bsf = f64::NAN;
        assert!(SeriesBackend::from_snapshot(BackendSnapshot::Damp(bad_damp)).is_err());
        let mut bad_trend = trend.clone();
        bad_trend.prev = f64::INFINITY;
        assert!(SeriesBackend::from_snapshot(BackendSnapshot::TrendCusum(bad_trend)).is_err());
        let bad = BackendSnapshot::Ensemble { damp, trend, fusion, weights: [f64::NAN; 3] };
        assert!(SeriesBackend::from_snapshot(bad).is_err());
        let _ = weights;
    }

    /// Max fusion takes the most-alarmed member; weighted-rank takes
    /// the weighted vote.
    #[test]
    fn ensemble_fusion_rules() {
        let fused_hot = ScoreVerdict { score: 9.0, z: 9.0, cusum: 0.0, is_anomaly: true };
        let mk = |fusion, weights| {
            SeriesBackend::build(
                BackendSelect::Ensemble(EnsembleOptions {
                    fusion,
                    weights,
                    ..Default::default()
                }),
                5.0,
                16,
            )
            .unwrap()
        };
        // members still warming (quiet): Max passes the fused alarm
        // through at full strength
        let mut e = mk(EnsembleFusion::Max, [1.0, 1.0, 1.0]);
        let v = e.observe(&point(0.0, 0.1), &fused_hot);
        assert_eq!(v.score, 9.0);
        assert!(v.is_anomaly);
        // weighted vote: the fused member alone holds 1/3 of the weight
        // — below the majority bar, so no alarm, and the score averages
        let mut e = mk(EnsembleFusion::WeightedRank, [1.0, 1.0, 1.0]);
        let v = e.observe(&point(0.0, 0.1), &fused_hot);
        assert!((v.score - 3.0).abs() < 1e-12);
        assert!(!v.is_anomaly);
        // with dominant fused weight the vote carries
        let mut e = mk(EnsembleFusion::WeightedRank, [3.0, 1.0, 1.0]);
        let v = e.observe(&point(0.0, 0.1), &fused_hot);
        assert!(v.is_anomaly);
    }
}
