//! Criterion microbenchmark behind Figure 7: single-point update cost of
//! the online decomposers as the period grows. OneShotSTL should be flat;
//! OnlineSTL linear in T.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decomp::traits::OnlineDecomposer;
use decomp::OnlineStl;
use oneshotstl::oneshot::OneShotStlConfig;
use oneshotstl::OneShotStl;
use std::hint::black_box;

fn stream(n: usize, t: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()).collect()
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_latency");
    for &t in &[100usize, 400, 1600, 6400] {
        // replay region must span a whole number of periods: the models
        // keep their own phase counters, and a mis-sized modulo would
        // desynchronize the stream from the model every wrap, firing the
        // seasonality-shift search on every point and measuring that
        // instead of the steady-state update
        let replay = 4 * t;
        let y = stream(4 * t + replay, t);
        group.bench_with_input(BenchmarkId::new("OneShotSTL", t), &t, |b, _| {
            let mut m = OneShotStl::new(OneShotStlConfig::default());
            m.init(&y[..4 * t], t).unwrap();
            let mut i = 0usize;
            b.iter(|| {
                let v = y[4 * t + (i % replay)];
                i += 1;
                black_box(m.update(black_box(v)))
            });
        });
        group.bench_with_input(BenchmarkId::new("OnlineSTL", t), &t, |b, _| {
            let mut m = OnlineStl::new();
            m.init(&y[..4 * t], t).unwrap();
            let mut i = 0usize;
            b.iter(|| {
                let v = y[4 * t + (i % replay)];
                i += 1;
                black_box(m.update(black_box(v)))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_updates
}
criterion_main!(benches);
