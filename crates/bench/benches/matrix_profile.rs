//! Criterion microbenchmark: matrix-profile substrate costs — MASS distance
//! profiles, STOMPI per-point appends, and DAMP scoring (the Table 3/4
//! runtime context for the STD-vs-matrix-profile comparison).

use anomaly::mass::mass;
use anomaly::{Damp, Stompi, TsadMethod};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn stream(n: usize, t: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                + 0.05 * ((i * 7919 % 101) as f64 / 101.0)
        })
        .collect()
}

fn bench_mp(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_profile");
    group.sample_size(10);
    let t = 64usize;
    for &n in &[2_000usize, 8_000] {
        let y = stream(n, t);
        group.bench_with_input(BenchmarkId::new("MASS", n), &n, |b, _| {
            let q = &y[100..100 + t];
            b.iter(|| black_box(mass(black_box(q), black_box(&y))));
        });
        group.bench_with_input(BenchmarkId::new("STOMPI_push", n), &n, |b, _| {
            let mut s = Stompi::new(&y[..n - 256], t);
            let mut i = 0usize;
            b.iter(|| {
                let v = y[n - 256 + (i % 256)];
                i += 1;
                black_box(s.push(black_box(v)))
            });
        });
        group.bench_with_input(BenchmarkId::new("DAMP_score", n), &n, |b, _| {
            b.iter(|| {
                let mut d = Damp::default();
                black_box(d.score(black_box(&y[..n / 2]), black_box(&y[n / 2..]), t))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_mp
}
criterion_main!(benches);
