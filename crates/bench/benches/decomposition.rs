//! Criterion microbenchmark: batch decomposition cost (STL vs RobustSTL vs
//! JointSTL) on a 4-period window — the per-slide cost of the windowed
//! baselines in Table 2 / Fig. 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decomp::traits::BatchDecomposer;
use decomp::{RobustStl, Stl};
use oneshotstl::JointStl;
use std::hint::black_box;

fn stream(n: usize, t: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 0.001 * i as f64 + (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
        .collect()
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_decomposition");
    group.sample_size(10);
    for &t in &[25usize, 50, 100] {
        let y = stream(4 * t, t);
        group.bench_with_input(BenchmarkId::new("STL", t), &t, |b, &t| {
            let stl = Stl::new();
            b.iter(|| black_box(stl.decompose(black_box(&y), t).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("RobustSTL", t), &t, |b, &t| {
            let r = RobustStl::new();
            b.iter(|| black_box(r.decompose(black_box(&y), t).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("JointSTL", t), &t, |b, &t| {
            let j = JointStl::with_lambda(100.0);
            b.iter(|| black_box(j.decompose(black_box(&y), t).unwrap()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_batch
}
criterion_main!(benches);
