//! # benchkit — experiment harness for the OneShotSTL reproduction
//!
//! One binary per paper table/figure (see `DESIGN.md` §5):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table2` | Table 2 — decomposition MAE on Syn1/Syn2 |
//! | `fig5_6` | Figures 5–6 — decomposed component series (CSV) |
//! | `fig7_latency` | Figure 7 — per-point latency vs period length |
//! | `table3` | Table 3 — TSAD VUS-ROC over the 17-family suite |
//! | `table4` | Table 4 — KDD21-style top-1 accuracy + hybrids |
//! | `table5` | Table 5 — TSF MAE over 6 datasets × 4 horizons |
//! | `fig8_ablation` | Figure 8 — TSAD vs ΔT, H ∈ {0, 20} |
//! | `fig9_ablation` | Figure 9 — TSF vs ΔT, H ∈ {0, 20} |
//! | `fig10_ablation` | Figure 10 — TSF, I = 1 vs I = 8 |
//! | `ablation_init` | extra — STL vs JointSTL initialization |
//! | `run_all` | everything above, `--quick` for a fast pass |
//!
//! Every binary accepts `--quick` (reduced workload sizes for smoke runs)
//! and writes a markdown report plus CSVs under `target/experiments/`.

pub mod adapters;
pub mod methods;
pub mod paper;
pub mod report;

pub use report::{fmt3, fmt_duration, Experiment};

/// Parses the common CLI flags shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// Reduced workload for smoke testing.
    pub quick: bool,
    /// RNG seed for the synthetic workloads.
    pub seed: u64,
}

impl Cli {
    /// Reads flags from `std::env::args`.
    pub fn parse() -> Self {
        let mut cli = Cli { quick: false, seed: 42 };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => cli.quick = true,
                "--seed" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        cli.seed = v;
                    }
                }
                _ => {}
            }
        }
        cli
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_defaults() {
        let cli = Cli { quick: false, seed: 42 };
        assert!(!cli.quick);
        assert_eq!(cli.seed, 42);
    }
}
