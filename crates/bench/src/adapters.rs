//! Adapters wiring the neural baselines into the `TsadMethod` /
//! `Forecaster` interfaces (kept here so the `neural` crate stays free of
//! evaluation dependencies).

use anomaly::TsadMethod;
use forecast::traits::Forecaster;
use neural::{DeepArLite, MlpForecaster, NBeats, TranAdLite, Usad};
use tskit::error::{Result, TsError};

/// LSTM-AD stand-in: window-MLP forecaster scored by prediction error.
pub struct LstmLike {
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TsadMethod for LstmLike {
    fn name(&self) -> String {
        "LSTM".into()
    }

    fn score(&mut self, train: &[f64], test: &[f64], period: usize) -> Vec<f64> {
        let w = period.clamp(16, 128);
        if train.len() <= 2 * w {
            return vec![0.0; test.len()];
        }
        let mut m = MlpForecaster::new(w, 32, self.epochs, self.seed);
        m.fit(train);
        m.score_stream(train, test)
    }
}

/// USAD adapter.
pub struct UsadMethod {
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TsadMethod for UsadMethod {
    fn name(&self) -> String {
        "USAD".into()
    }

    fn score(&mut self, train: &[f64], test: &[f64], period: usize) -> Vec<f64> {
        let w = period.clamp(16, 128);
        if train.len() <= 2 * w {
            return vec![0.0; test.len()];
        }
        let mut m = Usad::new(w, (w / 4).max(4), self.epochs, self.seed);
        m.fit(train);
        m.score_stream(train, test)
    }
}

/// TranAD-lite adapter.
pub struct TranAdMethod {
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TsadMethod for TranAdMethod {
    fn name(&self) -> String {
        "TranAD".into()
    }

    fn score(&mut self, train: &[f64], test: &[f64], period: usize) -> Vec<f64> {
        let w = period.clamp(16, 128);
        if train.len() <= 2 * w {
            return vec![0.0; test.len()];
        }
        let mut m = TranAdLite::new(w, 32, self.epochs, self.seed);
        m.fit(train);
        m.score_stream(train, test)
    }
}

/// N-BEATS as a batch [`Forecaster`].
pub struct NBeatsForecaster {
    /// Forecast horizon (fixed per model, as in the original).
    pub horizon: usize,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
    model: Option<NBeats>,
    recent: Vec<f64>,
}

impl NBeatsForecaster {
    /// Creates a forecaster for a specific horizon.
    pub fn new(horizon: usize, epochs: usize, seed: u64) -> Self {
        NBeatsForecaster { horizon, epochs, seed, model: None, recent: Vec::new() }
    }

    fn lookback(&self, period: usize) -> usize {
        (2 * self.horizon).min(4 * period.max(1)).clamp(16, 256)
    }
}

impl Forecaster for NBeatsForecaster {
    fn name(&self) -> String {
        "NBEATS".into()
    }

    fn fit(&mut self, history: &[f64], period: usize) -> Result<()> {
        let lookback = self.lookback(period);
        if history.len() < lookback + self.horizon + 10 {
            return Err(TsError::TooShort {
                what: "NBEATS history",
                need: lookback + self.horizon + 10,
                got: history.len(),
            });
        }
        let mut m = NBeats::new(lookback, self.horizon, self.seed);
        m.epochs = self.epochs;
        m.fit(history);
        self.recent = history[history.len() - lookback..].to_vec();
        self.model = Some(m);
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        match &self.model {
            Some(m) if m.is_fitted() => {
                let mut p = m.predict(&self.recent);
                p.truncate(horizon);
                p
            }
            _ => vec![0.0; horizon],
        }
    }

    fn observe(&mut self, y: f64) {
        if !self.recent.is_empty() {
            self.recent.remove(0);
            self.recent.push(y);
        }
    }
}

/// DeepAR-lite as a batch [`Forecaster`].
pub struct DeepArForecaster {
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
    model: Option<DeepArLite>,
    recent: Vec<f64>,
    t: usize,
}

impl DeepArForecaster {
    /// Creates an untrained DeepAR-lite forecaster.
    pub fn new(epochs: usize, seed: u64) -> Self {
        DeepArForecaster { epochs, seed, model: None, recent: Vec::new(), t: 0 }
    }
}

impl Forecaster for DeepArForecaster {
    fn name(&self) -> String {
        "DeepAR".into()
    }

    fn fit(&mut self, history: &[f64], period: usize) -> Result<()> {
        let w = period.clamp(16, 128);
        if history.len() < 2 * w + 10 {
            return Err(TsError::TooShort {
                what: "DeepAR history",
                need: 2 * w + 10,
                got: history.len(),
            });
        }
        let mut m = DeepArLite::new(w, period.max(2), self.seed);
        m.epochs = self.epochs;
        m.fit(history);
        self.recent = history[history.len() - w..].to_vec();
        self.t = history.len();
        self.model = Some(m);
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        match &self.model {
            Some(m) if m.is_fitted() => m.predict(&self.recent, self.t, horizon),
            _ => vec![0.0; horizon],
        }
    }

    fn observe(&mut self, y: f64) {
        if !self.recent.is_empty() {
            self.recent.remove(0);
            self.recent.push(y);
            self.t += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal(n: usize, t: usize) -> Vec<f64> {
        (0..n).map(|i| (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()).collect()
    }

    #[test]
    fn lstm_like_scores_stream() {
        let y = seasonal(600, 24);
        let mut m = LstmLike { epochs: 3, seed: 1 };
        let s = m.score(&y[..400], &y[400..], 24);
        assert_eq!(s.len(), 200);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn nbeats_forecaster_roundtrip() {
        let t = 16;
        let y = seasonal(600, t);
        let mut f = NBeatsForecaster::new(t, 5, 1);
        f.fit(&y[..500], t).unwrap();
        let p = f.forecast(t);
        assert_eq!(p.len(), t);
        assert!(p.iter().all(|v| v.is_finite()));
        f.observe(0.5);
        assert_eq!(f.recent.last().copied(), Some(0.5));
    }

    #[test]
    fn deepar_forecaster_roundtrip() {
        let t = 16;
        let y = seasonal(600, t);
        let mut f = DeepArForecaster::new(5, 2);
        f.fit(&y[..500], t).unwrap();
        let p = f.forecast(8);
        assert_eq!(p.len(), 8);
        assert!(p.iter().all(|v| v.is_finite()));
    }
}
