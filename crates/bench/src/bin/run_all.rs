//! Runs every experiment binary in sequence (pass `--quick` through for a
//! smoke pass). Each experiment writes its own report under
//! `target/experiments/`.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table2",
        "fig5_6",
        "fig7_latency",
        "table3",
        "table4",
        "table5",
        "fig8_ablation",
        "fig9_ablation",
        "fig10_ablation",
        "ablation_init",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for bin in bins {
        println!("\n===== running {bin} =====");
        let status = Command::new(dir.join(bin)).args(&args).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failed.push(bin);
            }
            Err(e) => {
                eprintln!("could not launch {bin}: {e}");
                failed.push(bin);
            }
        }
    }
    if failed.is_empty() {
        println!("\nall experiments completed; reports in target/experiments/");
    } else {
        eprintln!("\nfailed experiments: {failed:?}");
        std::process::exit(1);
    }
}
