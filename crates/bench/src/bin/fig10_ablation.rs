//! Figure 10: TSF ablation of the IRLS iteration count, I = 1 vs I = 8,
//! across horizons on the four strongly seasonal datasets (H = 20).

use benchkit::methods::oneshotstl_with;
use benchkit::{fmt3, Cli, Experiment};
use forecast::{evaluate_online, StdOnlineForecaster};
use neural::windows::Scaler;
use tskit::synth::tsf_dataset;

fn main() {
    let cli = Cli::parse();
    let datasets = ["ETTm2", "Electricity", "Traffic", "Weather"];
    let mut exp =
        Experiment::new("fig10_ablation", "Figure 10 — TSF MAE, I = 1 vs I = 8 (H = 20)");
    exp.para(
        "More IRLS iterations refine the trend/seasonal split. The paper \
         reports I = 8 at least as good as I = 1 on most settings, with \
         the largest margins on ETTm2.",
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for name in datasets {
        let ds = tsf_dataset(name, cli.seed);
        let scaler = Scaler::fit(ds.train());
        let z = scaler.transform(&ds.values);
        let horizons: Vec<usize> = if cli.quick { vec![96] } else { vec![96, 192, 336, 720] };
        for &h in &horizons {
            let mut row = vec![name.to_string(), h.to_string()];
            for &iters in &[1usize, 8] {
                let init_end = (4 * ds.period).min(ds.train_end / 2).max(2 * ds.period + 2);
                let mut f =
                    StdOnlineForecaster::new("OneShotSTL", oneshotstl_with(100.0, iters, 20));
                match evaluate_online(&mut f, &z, ds.period, init_end, ds.val_end, h, h) {
                    Ok(r) => {
                        row.push(fmt3(r.mae));
                        csv.push(vec![
                            name.into(),
                            h.to_string(),
                            iters.to_string(),
                            format!("{}", r.mae),
                        ]);
                    }
                    Err(e) => {
                        eprintln!("{name} h={h} I={iters} failed: {e}");
                        row.push("-".into());
                    }
                }
            }
            rows.push(row);
        }
        eprintln!("{name} done");
    }
    exp.table("MAE by iteration count", &["Dataset", "Horizon", "I=1", "I=8"], &rows);
    exp.csv("results", &["dataset", "horizon", "iters", "mae"], &csv);
    exp.finish();
}
