//! Table 2: decomposition MAE on Syn1 and Syn2.
//!
//! Protocol (paper §5.2): batch methods decompose the whole series; online
//! methods initialize on the first 4 periods and stream the rest. MAE is
//! measured against the generator's ground truth over the online region,
//! with λ tuned per §5.1.4.
//!
//! The Window-* baselines re-run a batch decomposition per point, which is
//! exactly the `O(W)`-per-update cost the paper criticizes — evaluating
//! them on every point would take hours. Because each windowed update is a
//! pure function of the current buffer, we evaluate them on a uniform
//! sample of update points and compute the MAE on those points (a faithful
//! estimate of their per-point output quality).

use benchkit::methods::{oneshotstl_tuned, tune_lambda};
use benchkit::paper::TABLE2_PAPER;
use benchkit::{fmt3, Cli, Experiment};
use decomp::traits::OnlineDecomposer;
use decomp::{BatchDecomposer, OnlineRobustStl, OnlineStl, RobustStl, Stl};
use tskit::ring::RingBuffer;
use tskit::synth::{syn1, syn2, StdDataset};
use tsmetrics::DecompErrors;

fn paper_ref(dataset: &str, method: &str) -> String {
    TABLE2_PAPER
        .iter()
        .find(|(d, m, _)| *d == dataset && *m == method)
        .map(|(_, _, v)| format!("{}/{}/{}", fmt3(v[0]), fmt3(v[1]), fmt3(v[2])))
        .unwrap_or_else(|| "-".into())
}

/// Sampled evaluation of a sliding-window batch method: decompose the
/// buffer at `samples` uniformly spaced online points; MAE over those.
fn windowed_sampled(
    batch: &dyn BatchDecomposer,
    ds: &StdDataset,
    split: usize,
    samples: usize,
) -> Option<DecompErrors> {
    let truth = ds.truth.as_ref()?;
    let t = ds.period;
    let w = 4 * t;
    let mut buf = RingBuffer::from_slice(w, &ds.values[..split]);
    let n = ds.values.len();
    let stride = ((n - split) / samples.max(1)).max(1);
    let (mut te, mut se, mut re, mut cnt) = (0.0, 0.0, 0.0, 0usize);
    for i in split..n {
        buf.push(ds.values[i]);
        if !(i - split).is_multiple_of(stride) {
            continue;
        }
        let window = buf.to_vec();
        if let Ok(d) = batch.decompose(&window, t) {
            let last = d.len() - 1;
            te += (d.trend[last] - truth.trend[i]).abs();
            se += (d.seasonal[last] - truth.seasonal[i]).abs();
            re += (d.residual[last] - truth.residual[i]).abs();
            cnt += 1;
        }
    }
    if cnt == 0 {
        return None;
    }
    Some(DecompErrors {
        trend: te / cnt as f64,
        seasonal: se / cnt as f64,
        residual: re / cnt as f64,
    })
}

fn run_dataset(
    ds: &StdDataset,
    samples: usize,
    exp: &mut Experiment,
    rows_csv: &mut Vec<Vec<String>>,
) {
    let truth = ds.truth.as_ref().expect("synthetic dataset has ground truth");
    let t = ds.period;
    let split = 4 * t;
    let eval = split..ds.values.len();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push = |name: &str, kind: &str, e: DecompErrors| {
        rows.push(vec![
            name.to_string(),
            kind.to_string(),
            fmt3(e.trend),
            fmt3(e.seasonal),
            fmt3(e.residual),
            paper_ref(&ds.name, name),
        ]);
        rows_csv.push(vec![
            ds.name.clone(),
            name.to_string(),
            format!("{}", e.trend),
            format!("{}", e.seasonal),
            format!("{}", e.residual),
        ]);
    };
    // batch methods on the full series
    let stl = if t > 200 { Stl::fast() } else { Stl::new() };
    for batch in [Box::new(stl) as Box<dyn BatchDecomposer>, Box::new(RobustStl::new())] {
        match batch.decompose(&ds.values, t) {
            Ok(d) => {
                push(batch.name(), "Batch", DecompErrors::over_range(&d, truth, eval.clone()))
            }
            Err(e) => eprintln!("{} failed on {}: {e}", batch.name(), ds.name),
        }
    }
    eprintln!("{}: batch methods done", ds.name);
    // windowed baselines (sampled; see module docs)
    let fast_stl = if t > 200 { Stl::fast() } else { Stl::new() };
    if let Some(e) = windowed_sampled(&fast_stl, ds, split, samples) {
        push("Window-STL", "Online", e);
    }
    eprintln!("{}: Window-STL done", ds.name);
    if let Some(e) = windowed_sampled(&RobustStl::new(), ds, split, samples) {
        push("Window-RobustSTL", "Online", e);
    }
    eprintln!("{}: Window-RobustSTL done", ds.name);
    // true online baselines on every point
    for mut m in [
        Box::new(OnlineStl::new()) as Box<dyn OnlineDecomposer>,
        Box::new(OnlineRobustStl::new()),
    ] {
        match m.run_series(&ds.values, t, split) {
            Ok(d) => {
                push(m.name(), "Online", DecompErrors::over_range(&d, truth, eval.clone()))
            }
            Err(e) => eprintln!("{} failed on {}: {e}", m.name(), ds.name),
        }
        eprintln!("{}: {} done", ds.name, m.name());
    }
    // OneShotSTL with λ tuned per the paper's §5.1.4 protocol (STL
    // proximity on the training window)...
    let lambda = tune_lambda(&ds.values[..split], t);
    let mut oneshot = oneshotstl_tuned(lambda);
    match oneshot.run_series(&ds.values, t, split) {
        Ok(d) => {
            push("OneShotSTL", "Online", DecompErrors::over_range(&d, truth, eval.clone()))
        }
        Err(e) => eprintln!("OneShotSTL failed on {}: {e}", ds.name),
    }
    eprintln!("{}: OneShotSTL done (λ = {lambda})", ds.name);
    // ...and with the best grid λ selected on ground truth ("oracle"): the
    // tuning protocol only sees the stationary training window, so it
    // cannot anticipate trend regime changes that occur later; this row
    // separates the algorithm's capability from the tuning blind spot.
    let mut best: Option<(f64, DecompErrors)> = None;
    for &l in &benchkit::methods::LAMBDA_GRID {
        let mut m = oneshotstl_tuned(l);
        if let Ok(d) = m.run_series(&ds.values, t, split) {
            let e = DecompErrors::over_range(&d, truth, eval.clone());
            if best.as_ref().is_none_or(|(_, b)| e.trend < b.trend) {
                best = Some((l, e));
            }
        }
    }
    if let Some((l, e)) = best {
        push(&format!("OneShotSTL (oracle λ={l})"), "Online", e);
    }
    exp.table(
        &format!("{} (T = {t}, λ = {lambda})", ds.name),
        &["Method", "Type", "Trend MAE", "Seasonal MAE", "Residual MAE", "paper (t/s/r)"],
        &rows,
    );
}

fn main() {
    let cli = Cli::parse();
    let samples = if cli.quick { 12 } else { 40 };
    let mut exp =
        Experiment::new("table2", "Table 2 — decomposition MAE on synthetic datasets");
    exp.para(
        "Synthetic stand-ins regenerate the paper's Syn1 (abrupt trend \
         changes, T=500) and Syn2 (four cycles shifted by 10 points, \
         T=250); MAE is computed against generator ground truth over the \
         online region (after 4 initialization periods). Window-* methods \
         are evaluated on a uniform sample of update points (see source).",
    );
    let mut csv = Vec::new();
    for ds in [syn1(cli.seed), syn2(cli.seed)] {
        run_dataset(&ds, samples, &mut exp, &mut csv);
    }
    exp.csv("results", &["dataset", "method", "trend", "seasonal", "residual"], &csv);
    exp.finish();
}
