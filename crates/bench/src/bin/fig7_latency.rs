//! Figure 7: average per-point update latency vs period length
//! `T ∈ {100, 200, …, 12800}`.
//!
//! The stream is a long repetition of the Syn1 pattern (the paper uses a
//! 200k-point repetition; latency depends only on `T` and the method).
//! Slow baselines get a latency *budget*: each method processes as many
//! points as fit in the budget, so Window-RobustSTL at T=12800 doesn't
//! take hours while OneShotSTL still measures thousands of points.

use benchkit::methods::oneshotstl_with;
use benchkit::paper::FIG7_PAPER_NOTE;
use benchkit::{fmt_duration, Cli, Experiment};
use decomp::traits::OnlineDecomposer;
use decomp::{OnlineRobustStl, OnlineStl, RobustStl, Stl, Windowed};
use std::time::{Duration, Instant};
use tskit::synth::SeasonTemplate;

/// Measures the average per-point update latency within a time budget.
fn measure(
    m: &mut dyn OnlineDecomposer,
    stream: &[f64],
    period: usize,
    init_len: usize,
    budget: Duration,
    max_points: usize,
) -> Option<(f64, usize)> {
    m.init(&stream[..init_len], period).ok()?;
    let start = Instant::now();
    let mut count = 0usize;
    for &v in stream[init_len..].iter().take(max_points) {
        m.update(v);
        count += 1;
        if count.is_multiple_of(8) && start.elapsed() > budget {
            break;
        }
    }
    if count == 0 {
        return None;
    }
    Some((start.elapsed().as_secs_f64() / count as f64 * 1e6, count))
}

fn main() {
    let cli = Cli::parse();
    let periods: Vec<usize> = if cli.quick {
        vec![100, 400, 1600]
    } else {
        vec![100, 200, 400, 800, 1600, 3200, 6400, 12800]
    };
    let budget = if cli.quick { Duration::from_secs(2) } else { Duration::from_secs(12) };
    let max_points = if cli.quick { 2_000 } else { 20_000 };
    let mut exp = Experiment::new("fig7_latency", "Figure 7 — per-point latency vs T");
    exp.para(FIG7_PAPER_NOTE);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &t in &periods {
        // Syn1-style pattern stretched to period T, long enough for init +
        // measurement
        let mut rng = rand::SeedableRng::seed_from_u64(cli.seed);
        let season = SeasonTemplate::random(t, 3, &mut rng);
        let n = 4 * t + max_points + t;
        let stream: Vec<f64> =
            (0..n).map(|i| 1.0 + season.at(i) + 0.05 * ((i * 37 % 97) as f64 / 97.0)).collect();
        let init_len = 4 * t;
        let mut methods: Vec<Box<dyn OnlineDecomposer>> = vec![
            Box::new(Windowed::new(Stl::fast(), "Window-STL", 4)),
            Box::new(Windowed::new(RobustStl::new(), "Window-RobustSTL", 4)),
            Box::new(OnlineRobustStl::new()),
            Box::new(OnlineStl::new()),
            Box::new(oneshotstl_with(100.0, 8, 20)),
        ];
        let mut row = vec![t.to_string()];
        for m in methods.iter_mut() {
            let name = m.name().to_string();
            let started = Instant::now();
            match measure(m.as_mut(), &stream, t, init_len, budget, max_points) {
                Some((us, points)) => {
                    row.push(format!("{us:.1}µs ({points} pts)"));
                    csv.push(vec![t.to_string(), name, format!("{us}"), points.to_string()]);
                }
                None => {
                    row.push(format!("init>{}", fmt_duration(started.elapsed())));
                }
            }
        }
        rows.push(row);
        eprintln!("T = {t} done");
    }
    exp.table(
        "average per-point update latency",
        &["T", "Window-STL", "Window-RobustSTL", "OnlineRobustSTL", "OnlineSTL", "OneShotSTL"],
        &rows,
    );
    exp.para(
        "Expected shape: all baselines scale with T (OnlineSTL linearly, \
         the windowed batch methods much steeper); OneShotSTL stays flat — \
         the paper's crossover vs OnlineSTL appears between T=400 and \
         T=1600.",
    );
    exp.csv("results", &["T", "method", "latency_us", "points"], &csv);
    exp.finish();
}
