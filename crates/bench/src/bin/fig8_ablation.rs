//! Figure 8: TSAD ablation of period misspecification ΔT ∈ {0,5,10,15,20}
//! with the seasonality-shift window H ∈ {0, 20}, on four TSAD families.

use anomaly::{StdNSigma, TsadMethod};
use benchkit::methods::oneshotstl_with;
use benchkit::{fmt3, Cli, Experiment};
use tskit::synth::{kdd21_like, tsad_family};
use tsmetrics::kdd::kdd21_hit;
use tsmetrics::vus_roc;

fn main() {
    let cli = Cli::parse();
    let n_series = if cli.quick { 1 } else { 2 };
    let deltas: &[usize] = if cli.quick { &[0, 10, 20] } else { &[0, 5, 10, 15, 20] };
    let mut exp =
        Experiment::new("fig8_ablation", "Figure 8 — TSAD vs period error ΔT, H ∈ {0, 20}");
    exp.para(
        "OneShotSTL receives T + ΔT instead of the true period. The paper's \
         expectation: H = 20 dominates H = 0 everywhere, and accuracy \
         degrades as ΔT grows (fastest on the KDD21-style data).",
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    // KDD21-style accuracy plus three VUS families
    let kdd = kdd21_like(if cli.quick { 4 } else { 10 }, cli.seed);
    for &h in &[0usize, 20] {
        for &dt in deltas {
            let mut row = vec![format!("H={h}"), format!("ΔT={dt}")];
            // KDD21 accuracy
            let mut hits = 0usize;
            for s in &kdd {
                let period = s.period.expect("generator sets period") + dt;
                let mut m = StdNSigma::new("OneShotSTL", 5.0, || oneshotstl_with(100.0, 8, h));
                let scores = m.score(s.train(), s.test(), period);
                if kdd21_hit(&scores, s.test_labels(), 100) {
                    hits += 1;
                }
            }
            let acc = hits as f64 / kdd.len() as f64;
            row.push(fmt3(acc));
            csv.push(vec![h.to_string(), dt.to_string(), "KDD21".into(), format!("{acc}")]);
            // VUS families
            for fam_name in ["ECG", "IOPS", "Daphnet"] {
                let fam = tsad_family(fam_name, n_series, cli.seed);
                let mut total = 0.0;
                for s in &fam.series {
                    let period = s.period.expect("generator sets period") + dt;
                    let mut m =
                        StdNSigma::new("OneShotSTL", 5.0, || oneshotstl_with(100.0, 8, h));
                    let scores = m.score(s.train(), s.test(), period);
                    let max_l = s.period.unwrap().min(s.test().len() / 10).max(10);
                    total += vus_roc(&scores, s.test_labels(), max_l, 8);
                }
                let v = total / fam.series.len() as f64;
                row.push(fmt3(v));
                csv.push(vec![h.to_string(), dt.to_string(), fam_name.into(), format!("{v}")]);
            }
            rows.push(row);
            eprintln!("H={h} ΔT={dt} done");
        }
    }
    exp.table(
        "accuracy vs ΔT",
        &["H", "ΔT", "KDD21 (acc)", "ECG (VUS)", "IOPS (VUS)", "Daphnet (VUS)"],
        &rows,
    );
    exp.csv("results", &["H", "dT", "dataset", "score"], &csv);
    exp.finish();
}
