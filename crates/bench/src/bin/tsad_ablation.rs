//! TSAD quality ablation of the persistence-aware residual scorer
//! (`oneshotstl::score`): CUSUM reference `k`, decision bar `h`,
//! peak-hold decay `γ`, and fusion rule, swept over the synthetic
//! TSB-UAD stand-in families.
//!
//! The fused scorer is behavior-changing on the *hard* regime — wandering
//! trend + level shifts (IOPS-style), where the adaptive trend absorbs a
//! level shift within a few points and the instantaneous z-score sees only
//! the shift edges (~0.55 VUS-ROC, near chance). Its defaults must
//! therefore be chosen by data: this binary scores every candidate on
//!
//! - the **wandering-trend** target (IOPS seeds 7 & 11 — the exact
//!   workload `tsad_pipeline_beats_chance_on_wandering_trend_family`
//!   pins), plus further wandering families (SMD, GHL) in full mode, and
//! - the **strongly seasonal** regression guard (ECG — the workload
//!   `tsad_pipeline_scores_well_on_seasonal_family` pins),
//!
//! reporting VUS-ROC per family. The decomposition is score-config
//! independent, so each series is decomposed once and its residual stream
//! is re-scored per candidate — the sweep costs one decomposition pass.
//!
//! **TSAD protocol note.** The sweep also compares the decomposer's §3.4
//! seasonality-shift search on vs off (full mode): on these anomaly
//! workloads the search *hurts* — an anomalous excursion trips the
//! NSigma trigger and the search partially absorbs it into a
//! seasonal-phase shift, destroying the residual evidence the scorer
//! needs (IOPS z-only drops ~0.05 VUS-ROC, ECG similar). The TSAD
//! evaluation protocol therefore runs `shift_window: 0` (the paper's
//! shift handling targets genuine seasonality drift, not anomaly
//! scoring); the protocol numbers below and the integration tests pin
//! that configuration.
//!
//! Modes: the default run emits `BENCH_tsad.json` plus a markdown report
//! under `target/experiments/`; `--smoke` is the CI quality gate — it
//! **fails the process** when the shipped [`ScoreConfig::default`] scores
//! below 0.70 VUS-ROC on the wandering-trend family or regresses the ECG
//! family by more than 1% against the pre-CUSUM (`Fusion::Off`) baseline
//! under the same protocol.

use benchkit::{Cli, Experiment};
use decomp::traits::OnlineDecomposer;
use fleet::{BackendSelect, DampOptions, EnsembleOptions, SeriesBackend};
use oneshotstl::system::Lambdas;
use oneshotstl::{Fusion, OneShotStl, OneShotStlConfig, ResidualScorer, ScoreConfig};
use std::fmt::Write as _;
use tskit::period::find_length;
use tskit::series::DecompPoint;
use tskit::synth::tsad_family;
use tsmetrics::vus::vus_roc;

/// One decomposed series, ready for O(n) re-scoring per score config.
struct PreparedSeries {
    /// Residuals of the initialization window (seed the scorer).
    init_residuals: Vec<f64>,
    /// Residuals of the test stream, in order.
    test_residuals: Vec<f64>,
    /// Trends of the test stream (the trend-CUSUM / ensemble backends
    /// score trend innovations; 0.0 on the init-failure fallback).
    test_trends: Vec<f64>,
    /// Test labels.
    labels: Vec<bool>,
    /// Detected period (VUS buffer length).
    period: usize,
}

/// A family evaluation set: every member series of every seed, decomposed.
struct PreparedFamily {
    name: String,
    series: Vec<PreparedSeries>,
}

/// Decomposes one family with the TSAD-protocol detector: tied λ = 10
/// (the paper's per-dataset tuning for these families), and the §3.4
/// shift search disabled unless `shift_window` says otherwise (see the
/// protocol note in the module docs).
fn prepare_family(
    name: &str,
    seeds: &[u64],
    n_series: usize,
    shift_window: usize,
) -> PreparedFamily {
    let mut series = Vec::new();
    for &seed in seeds {
        let fam = tsad_family(name, n_series, seed);
        for s in &fam.series {
            let period = find_length(s.train());
            let cfg = OneShotStlConfig {
                lambdas: Lambdas { lambda1: 10.0, lambda2: 10.0, anchor: 1.0 },
                shift_window,
                ..Default::default()
            };
            let mut dec = OneShotStl::new(cfg);
            let (init_residuals, test_residuals, test_trends) = match dec
                .init(s.train(), period)
            {
                Ok(d) => {
                    let mut residuals = Vec::with_capacity(s.test().len());
                    let mut trends = Vec::with_capacity(s.test().len());
                    for &y in s.test() {
                        let p = dec.update(y);
                        residuals.push(p.residual);
                        trends.push(p.trend);
                    }
                    (d.residual, residuals, trends)
                }
                // init failure (flat/short train): score the raw values
                // and never touch the uninitialized decomposer — the
                // same degradation StdNSigma applies (trend 0.0 keeps
                // the trend-innovation backends quiet)
                Err(_) => (s.train().to_vec(), s.test().to_vec(), vec![0.0; s.test().len()]),
            };
            series.push(PreparedSeries {
                init_residuals,
                test_residuals,
                test_trends,
                labels: s.test_labels().to_vec(),
                period,
            });
        }
    }
    PreparedFamily { name: name.to_string(), series }
}

/// Family-average VUS-ROC of one score config over prepared residuals.
fn family_vus(fam: &PreparedFamily, config: ScoreConfig) -> f64 {
    let mut total = 0.0;
    for s in &fam.series {
        let mut scorer = ResidualScorer::new(5.0, config);
        scorer.seed(&s.init_residuals);
        let scores: Vec<f64> =
            s.test_residuals.iter().map(|&r| scorer.update(r).score).collect();
        total += vus_roc(&scores, &s.labels, s.period.max(10), 8);
    }
    total / fam.series.len() as f64
}

/// Family-average VUS-ROC of one detection-backend selection, mirroring
/// the fleet's dispatch: the fused scorer (shipped default, seeded on the
/// init residuals) produces its verdict, the backend observes the
/// decomposed point plus that verdict, and the backend's score replaces
/// the fused one. Backends start cold — exactly the state a fleet series
/// is in at promotion.
fn backend_family_vus(fam: &PreparedFamily, select: BackendSelect) -> f64 {
    let mut total = 0.0;
    for s in &fam.series {
        let mut scorer = ResidualScorer::new(5.0, ScoreConfig::default());
        scorer.seed(&s.init_residuals);
        let mut backend =
            SeriesBackend::build(select, 5.0, s.period).expect("non-fused backend arm");
        let scores: Vec<f64> = s
            .test_residuals
            .iter()
            .zip(&s.test_trends)
            .map(|(&r, &trend)| {
                let fused = scorer.update(r);
                let point = DecompPoint { trend, seasonal: 0.0, residual: r };
                backend.observe(&point, &fused).score
            })
            .collect();
        total += vus_roc(&scores, &s.labels, s.period.max(10), 8);
    }
    total / fam.series.len() as f64
}

fn fusion_name(f: Fusion) -> &'static str {
    match f {
        Fusion::Off => "Off",
        Fusion::Cusum => "Cusum",
        Fusion::Max => "Max",
    }
}

fn config_label(c: &ScoreConfig) -> String {
    if c.fusion == Fusion::Off {
        "Off (z only)".to_string()
    } else {
        format!("{} k={} h={} g={}", fusion_name(c.fusion), c.cusum_k, c.cusum_h, c.hold_decay)
    }
}

struct Row {
    config: ScoreConfig,
    /// Per-family VUS, in `families` order.
    vus: Vec<f64>,
}

fn main() {
    let cli = Cli::parse();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let quick = cli.quick || smoke;

    // the wandering-trend target family is ALWAYS (IOPS, seeds 7 & 11):
    // that exact average is what the integration test and the CI gate pin
    eprintln!("[tsad_ablation] decomposing families (one pass per series)...");
    let mut families =
        vec![prepare_family("IOPS", &[7, 11], 2, 0), prepare_family("ECG", &[7], 2, 0)];
    if !quick {
        families.push(prepare_family("SMD", &[7], 2, 0));
        families.push(prepare_family("GHL", &[7], 2, 0));
    }

    // candidate grid: the smoke gate only needs the shipped default and
    // the Off baseline; the full sweep maps the response surface
    let candidates: Vec<ScoreConfig> = if quick {
        vec![ScoreConfig::off(), ScoreConfig::default()]
    } else {
        let mut v = vec![ScoreConfig::off()];
        for &fusion in &[Fusion::Cusum, Fusion::Max] {
            for &cusum_k in &[0.25, 0.5, 1.0] {
                for &cusum_h in &[4.0, 6.0, 8.0] {
                    for &hold_decay in &[0.0, 0.98, 0.99] {
                        v.push(ScoreConfig { cusum_k, cusum_h, hold_decay, fusion });
                    }
                }
            }
        }
        v
    };

    let mut rows: Vec<Row> = Vec::new();
    for &config in &candidates {
        let vus: Vec<f64> = families.iter().map(|f| family_vus(f, config)).collect();
        let mut line = format!("[tsad_ablation] {:<22}", config_label(&config));
        for (f, v) in families.iter().zip(&vus) {
            let _ = write!(line, "  {} {v:.4}", f.name);
        }
        eprintln!("{line}");
        rows.push(Row { config, vus });
    }

    // ── detection-backend arms (fleet dispatch semantics) ───────────────
    // evaluated on every run (the smoke gate pins the ensemble arm); the
    // fused default above is the "Fused" backend, so the arms are the
    // three non-trivial selections
    let backend_arms: Vec<(&str, BackendSelect)> = vec![
        ("damp", BackendSelect::Damp(DampOptions::default())),
        ("trend_cusum", BackendSelect::TrendCusum(ScoreConfig::default())),
        ("ensemble", BackendSelect::Ensemble(EnsembleOptions::default())),
    ];
    let mut backend_rows: Vec<(&str, Vec<f64>)> = Vec::new();
    for (name, select) in &backend_arms {
        let vus: Vec<f64> = families.iter().map(|f| backend_family_vus(f, *select)).collect();
        let mut line = format!("[tsad_ablation] backend {name:<15}");
        for (f, v) in families.iter().zip(&vus) {
            let _ = write!(line, "  {} {v:.4}", f.name);
        }
        eprintln!("{line}");
        backend_rows.push((name, vus));
    }

    // full mode: document the shift-search protocol choice with data
    let mut protocol_rows: Vec<(String, f64, f64)> = Vec::new();
    if !quick {
        for (fname, seeds) in [("IOPS", vec![7u64, 11]), ("ECG", vec![7u64])] {
            let with_search = prepare_family(fname, &seeds, 2, 20);
            let z_on = family_vus(&with_search, ScoreConfig::off());
            let fused_on = family_vus(&with_search, ScoreConfig::default());
            protocol_rows.push((format!("{fname} shift_window=20"), z_on, fused_on));
            let off_fam = families.iter().find(|f| f.name == fname).unwrap();
            protocol_rows.push((
                format!("{fname} shift_window=0"),
                family_vus(off_fam, ScoreConfig::off()),
                family_vus(off_fam, ScoreConfig::default()),
            ));
        }
        for (label, z, fused) in &protocol_rows {
            eprintln!("[tsad_ablation] protocol {label}: z-only {z:.4}, fused {fused:.4}");
        }
    }

    let fam_idx = |name: &str| families.iter().position(|f| f.name == name).unwrap();
    let (iops, ecg) = (fam_idx("IOPS"), fam_idx("ECG"));
    let off_row = rows.iter().find(|r| r.config.fusion == Fusion::Off).unwrap();
    let (off_iops, off_ecg) = (off_row.vus[iops], off_row.vus[ecg]);
    let default_row = rows
        .iter()
        .find(|r| r.config == ScoreConfig::default())
        .expect("sweep covers the shipped default");
    let (def_iops, def_ecg) = (default_row.vus[iops], default_row.vus[ecg]);

    // ── the CI gate: the shipped default must hold its quality bar ──────
    let mut failures: Vec<String> = Vec::new();
    // NaN-safe gates: a NaN metric must fail, not pass
    if def_iops.is_nan() || def_iops < 0.70 {
        failures.push(format!(
            "default {:?} scores {def_iops:.4} VUS-ROC on the wandering-trend family \
             (bar: >= 0.70; Off baseline {off_iops:.4})",
            ScoreConfig::default()
        ));
    }
    let ecg_regress_pct = 100.0 * (off_ecg - def_ecg) / off_ecg;
    if ecg_regress_pct.is_nan() || ecg_regress_pct > 1.0 {
        failures.push(format!(
            "default config regresses the ECG family by {ecg_regress_pct:.2}% \
             ({off_ecg:.4} -> {def_ecg:.4}; bar: <= 1%)"
        ));
    }

    // ── the ensemble gate: the shipped EnsembleOptions::default() must
    //    not trade away the fused scorer's quality ───────────────────────
    let ens = &backend_rows.iter().find(|(n, _)| *n == "ensemble").unwrap().1;
    let (ens_iops, ens_ecg) = (ens[iops], ens[ecg]);
    if ens_iops.is_nan() || ens_iops < 0.75 {
        failures.push(format!(
            "ensemble backend scores {ens_iops:.4} VUS-ROC on the wandering-trend \
             family (bar: >= 0.75; fused default {def_iops:.4})"
        ));
    }
    for (fam_name, ens_v, def_v) in [("IOPS", ens_iops, def_iops), ("ECG", ens_ecg, def_ecg)] {
        let loss_pct = 100.0 * (def_v - ens_v) / def_v;
        if loss_pct.is_nan() || loss_pct > 1.0 {
            failures.push(format!(
                "ensemble backend loses {loss_pct:.2}% VUS-ROC to the fused scorer \
                 on {fam_name} ({def_v:.4} -> {ens_v:.4}; bar: <= 1%)"
            ));
        }
    }

    // ── reports ─────────────────────────────────────────────────────────
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"tsad_ablation\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"families\": [{}],",
        families.iter().map(|f| format!("\"{}\"", f.name)).collect::<Vec<_>>().join(", ")
    );
    let d = ScoreConfig::default();
    let _ = writeln!(
        json,
        "  \"default\": {{\"fusion\": \"{}\", \"cusum_k\": {}, \"cusum_h\": {}, \
         \"hold_decay\": {}}},",
        fusion_name(d.fusion),
        d.cusum_k,
        d.cusum_h,
        d.hold_decay
    );
    let _ = writeln!(
        json,
        "  \"wandering_trend_vus\": {{\"off\": {off_iops:.4}, \"default\": {def_iops:.4}}},"
    );
    let _ =
        writeln!(json, "  \"ecg_vus\": {{\"off\": {off_ecg:.4}, \"default\": {def_ecg:.4}}},");
    let _ = writeln!(json, "  \"backends\": {{");
    for (i, (name, vus)) in backend_rows.iter().enumerate() {
        let comma = if i + 1 == backend_rows.len() { "" } else { "," };
        let per_family = families
            .iter()
            .zip(vus)
            .map(|(f, v)| format!("\"{}\": {v:.4}", f.name))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(json, "    \"{name}\": {{{per_family}}}{comma}");
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let per_family = families
            .iter()
            .zip(&r.vus)
            .map(|(f, v)| format!("\"{}\": {v:.4}", f.name))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "    {{\"fusion\": \"{}\", \"cusum_k\": {}, \"cusum_h\": {}, \
             \"hold_decay\": {}, {per_family}}}{comma}",
            fusion_name(r.config.fusion),
            r.config.cusum_k,
            r.config.cusum_h,
            r.config.hold_decay,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_tsad.json", &json).expect("writing BENCH_tsad.json");
    eprintln!("[tsad_ablation] wrote BENCH_tsad.json");

    let mut report =
        Experiment::new("tsad_ablation", "Persistence-aware residual scoring ablation");
    let header: Vec<String> = std::iter::once("config".to_string())
        .chain(families.iter().map(|f| f.name.clone()))
        .collect();
    report.table(
        "Score config vs family VUS-ROC",
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &rows
            .iter()
            .map(|r| {
                std::iter::once(config_label(&r.config))
                    .chain(r.vus.iter().map(|v| format!("{v:.4}")))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>(),
    );
    report.table(
        "Detection backend vs family VUS-ROC (fleet dispatch semantics)",
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &backend_rows
            .iter()
            .map(|(name, vus)| {
                std::iter::once(name.to_string())
                    .chain(vus.iter().map(|v| format!("{v:.4}")))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>(),
    );
    if !protocol_rows.is_empty() {
        report.table(
            "Decomposer protocol: §3.4 shift search on vs off",
            &["protocol", "z-only", "fused default"],
            &protocol_rows
                .iter()
                .map(|(l, z, f)| vec![l.clone(), format!("{z:.4}"), format!("{f:.4}")])
                .collect::<Vec<_>>(),
        );
    }
    report.para(&format!(
        "VUS-ROC per family (higher is better); IOPS = wandering trend + level \
         shifts over seeds 7 & 11 (the integration-test workload), ECG = strongly \
         seasonal regression guard. Off is the pre-CUSUM instantaneous z-score. \
         TSAD protocol: tied λ = 10, shift_window = 0 (see module docs). \
         Default: {:?}.",
        ScoreConfig::default()
    ));
    report.finish();

    if failures.is_empty() {
        eprintln!(
            "[tsad_ablation] OK: default fused scoring holds the quality bar \
             (wandering-trend {def_iops:.4} >= 0.70, was {off_iops:.4}; \
             ECG {def_ecg:.4} vs {off_ecg:.4}, regression {ecg_regress_pct:.2}% <= 1%; \
             ensemble {ens_iops:.4} >= 0.75 on IOPS, {ens_ecg:.4} on ECG, \
             within 1% of fused)"
        );
    } else {
        for f in &failures {
            eprintln!("[tsad_ablation] FAIL: {f}");
        }
        std::process::exit(1);
    }
}
