//! Figure 9: TSF ablation of period misspecification ΔT with H ∈ {0, 20},
//! horizon 96 (24 for Illness), on the four strongly seasonal datasets.

use benchkit::methods::oneshotstl_with;
use benchkit::{fmt3, Cli, Experiment};
use forecast::{evaluate_online, StdOnlineForecaster};
use neural::windows::Scaler;
use tskit::synth::tsf_dataset;

fn main() {
    let cli = Cli::parse();
    let deltas: &[usize] = if cli.quick { &[0, 10, 20] } else { &[0, 5, 10, 15, 20] };
    let datasets = ["ETTm2", "Electricity", "Traffic", "Weather"];
    let mut exp =
        Experiment::new("fig9_ablation", "Figure 9 — TSF MAE vs period error ΔT, H ∈ {0, 20}");
    exp.para(
        "Unlike TSAD (Fig. 8), forecasting cannot correct a wrong T for \
         future points (ŷ uses v[(t+i) mod T] directly), so the paper \
         expects MAE to rise sharply with ΔT for both H settings.",
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &h in &[0usize, 20] {
        for &dt in deltas {
            let mut row = vec![format!("H={h}"), format!("ΔT={dt}")];
            for name in datasets {
                let ds = tsf_dataset(name, cli.seed);
                let scaler = Scaler::fit(ds.train());
                let z = scaler.transform(&ds.values);
                let horizon = 96usize;
                let period = ds.period + dt;
                let init_end = (4 * period).min(ds.train_end / 2).max(2 * period + 2);
                let mut f =
                    StdOnlineForecaster::new("OneShotSTL", oneshotstl_with(100.0, 8, h));
                match evaluate_online(
                    &mut f, &z, period, init_end, ds.val_end, horizon, horizon,
                ) {
                    Ok(r) => {
                        row.push(fmt3(r.mae));
                        csv.push(vec![
                            h.to_string(),
                            dt.to_string(),
                            name.into(),
                            format!("{}", r.mae),
                        ]);
                    }
                    Err(e) => {
                        eprintln!("{name} H={h} ΔT={dt} failed: {e}");
                        row.push("-".into());
                    }
                }
            }
            rows.push(row);
            eprintln!("H={h} ΔT={dt} done");
        }
    }
    let mut headers = vec!["H", "ΔT"];
    headers.extend(datasets.iter());
    exp.table("MAE (horizon 96) vs ΔT", &headers, &rows);
    exp.csv("results", &["H", "dT", "dataset", "mae"], &csv);
    exp.finish();
}
