//! Table 5: long-horizon forecasting MAE on the six Informer-style
//! datasets. Values are z-scored with train statistics (the benchmark
//! convention); FiLM/FEDformer/Informer are reference-only (not
//! re-implemented — DESIGN.md §4).

use benchkit::adapters::{DeepArForecaster, NBeatsForecaster};
use benchkit::methods::oneshotstl_tuned;
use benchkit::paper::TABLE5_PAPER_AVG;
use benchkit::{fmt3, fmt_duration, Cli, Experiment};
use decomp::OnlineStl;
use forecast::{
    evaluate_forecaster, evaluate_online, AutoArima, Forecaster, HoltWinters, SeasonalNaive,
    StdOnlineForecaster, Theta,
};
use neural::windows::Scaler;
use std::time::Duration;
use tskit::synth::tsf_suite;

fn main() {
    let cli = Cli::parse();
    let suite = tsf_suite(cli.seed);
    let mut exp = Experiment::new("table5", "Table 5 — TSF MAE (6 datasets × horizons)");
    exp.para(
        "Rolling-origin evaluation with stride = horizon, values z-scored \
         by train statistics. STD methods observe every point online; batch \
         methods fit once on train+val (matching the paper's protocol of \
         training once and testing across the test split).",
    );
    let method_names = [
        "SeasonalNaive",
        "Theta",
        "HoltWinters",
        "AutoARIMA",
        "NBEATS",
        "DeepAR",
        "OnlineSTL",
        "OneShotSTL",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    let mut sums = vec![0.0f64; method_names.len()];
    let mut times = vec![Duration::ZERO; method_names.len()];
    let mut cells = 0usize;
    for ds in &suite {
        let scaler = Scaler::fit(ds.train());
        let z: Vec<f64> = scaler.transform(&ds.values);
        let horizons: Vec<usize> =
            if cli.quick { vec![ds.horizons[0]] } else { ds.horizons.clone() };
        for &h in &horizons {
            let stride = h; // non-overlapping windows
            let mut row = vec![format!("{} h={h}", ds.name)];
            let mut maes = Vec::new();
            let epochs = if cli.quick { 2 } else { 6 };
            // batch methods
            let mut batch: Vec<Box<dyn Forecaster>> = vec![
                Box::new(SeasonalNaive::default()),
                Box::new(Theta::default()),
                Box::new(HoltWinters::default()),
                Box::new(AutoArima::default()),
                Box::new(NBeatsForecaster::new(h, epochs, cli.seed)),
                Box::new(DeepArForecaster::new(epochs, cli.seed)),
            ];
            for (mi, f) in batch.iter_mut().enumerate() {
                match evaluate_forecaster(f.as_mut(), &z, ds.period, ds.val_end, h, stride, 0) {
                    Ok(r) => {
                        row.push(fmt3(r.mae));
                        maes.push(r.mae);
                        sums[mi] += r.mae;
                        times[mi] += r.elapsed;
                    }
                    Err(e) => {
                        eprintln!("{} failed on {} h={h}: {e}", f.name(), ds.name);
                        row.push("-".into());
                        maes.push(f64::NAN);
                    }
                }
            }
            // online STD methods
            let init_end = (4 * ds.period).min(ds.train_end / 2).max(2 * ds.period + 2);
            let mut run_online =
                |mi: usize,
                 row: &mut Vec<String>,
                 maes: &mut Vec<f64>,
                 r: tskit::Result<forecast::EvalReport>| {
                    match r {
                        Ok(r) => {
                            row.push(fmt3(r.mae));
                            maes.push(r.mae);
                            sums[mi] += r.mae;
                            times[mi] += r.elapsed;
                        }
                        Err(e) => {
                            eprintln!("online method failed: {e}");
                            row.push("-".into());
                            maes.push(f64::NAN);
                        }
                    }
                };
            {
                let mut f = StdOnlineForecaster::new("OnlineSTL", OnlineStl::new());
                let r = evaluate_online(&mut f, &z, ds.period, init_end, ds.val_end, h, stride);
                run_online(6, &mut row, &mut maes, r);
            }
            {
                let mut f = StdOnlineForecaster::new("OneShotSTL", oneshotstl_tuned(100.0));
                let r = evaluate_online(&mut f, &z, ds.period, init_end, ds.val_end, h, stride);
                run_online(7, &mut row, &mut maes, r);
            }
            cells += 1;
            for (mi, v) in maes.iter().enumerate() {
                csv.push(vec![
                    ds.name.clone(),
                    h.to_string(),
                    method_names[mi].to_string(),
                    format!("{v}"),
                ]);
            }
            rows.push(row);
            eprintln!("{} h={h} done", ds.name);
        }
    }
    let mut avg_row = vec!["**Avg. MAE**".to_string()];
    avg_row.extend(sums.iter().map(|s| fmt3(s / cells as f64)));
    rows.push(avg_row);
    let mut time_row = vec!["**Total time**".to_string()];
    time_row.extend(times.iter().map(|t| fmt_duration(*t)));
    rows.push(time_row);
    let mut headers: Vec<&str> = vec!["Dataset"];
    headers.extend(method_names.iter());
    exp.table("MAE per dataset × horizon", &headers, &rows);
    let paper_rows: Vec<Vec<String>> =
        TABLE5_PAPER_AVG.iter().map(|(n, v)| vec![n.to_string(), fmt3(*v)]).collect();
    exp.table(
        "paper Avg. MAE (reference; * = transformer baselines not re-implemented)",
        &["Method", "Avg. MAE"],
        &paper_rows,
    );
    exp.csv("results", &["dataset", "horizon", "method", "mae"], &csv);
    exp.finish();
}
