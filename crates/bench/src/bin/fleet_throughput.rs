//! Fleet engine throughput: points/sec vs. shard count at two fleet sizes
//! and two workload regimes.
//!
//! Protocol: for each fleet size, one engine is warmed to fully-live state
//! (fixed period 24, `init_len` 72 points per series) and snapshotted; each
//! shard-count configuration then restores that snapshot — exercising the
//! codec at scale — and ingests full-fleet rounds in 8192-record batches.
//! Only the live-scoring phase is timed.
//!
//! Two workloads, reported separately (the JSON records each run's
//! anomaly rate so the numbers stay interpretable):
//!
//! - **steady** — seasonal + trend + small per-point noise, the
//!   representative production regime: NSigma stays calibrated and
//!   essentially no point triggers the §3.4 shift search.
//! - **storm** — the same signal with *zero* noise (the original seed
//!   workload). Noise-free residuals collapse the NSigma σ, so a double-
//!   digit percentage of points false-alarm at 5σ and pay the §3.4 shift
//!   search. This tier prices the anomaly path under storm conditions,
//!   not steady-state ingest — and it runs **twice**: once with the
//!   default pruned search (`storm`, top-k proxy candidates only) and
//!   once exhaustive (`storm-full`, all `2H + 1` trials, ~40× a plain
//!   update), so the pruning win is measured where it matters.
//!
//! Emits `BENCH_fleet.json` in the working directory (the repo's perf
//! trajectory seed) and a markdown report under `target/experiments/`.
//! Note: shard scaling is hardware-bound — the JSON records the host's
//! core count so flat curves on small machines read as what they are.

use benchkit::{fmt_duration, Cli, Experiment};
use fleet::{FleetConfig, FleetEngine, NetClient, NetServer, PeriodPolicy, Record, SeriesKey};
use oneshotstl::{OneShotStlConfig, ShiftSearchConfig};
use std::fmt::Write as _;
use std::time::Instant;

const PERIOD: usize = 24;
const BATCH: usize = 8192;

struct Run {
    workload: &'static str,
    series: usize,
    shards: usize,
    points: u64,
    elapsed_s: f64,
    points_per_sec: f64,
    anomaly_pct: f64,
    restore_s: f64,
    snapshot_mib: f64,
}

/// Deterministic per-(series, t) noise in [-1, 1): a splitmix-style hash,
/// so every run and every restore sees the identical stream.
fn noise_unit(series: usize, t: u64) -> f64 {
    let mut s = (series as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ t.wrapping_mul(0x2545_f491_4f6c_dd1d);
    s ^= s >> 30;
    s = s.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    s ^= s >> 27;
    (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

fn series_value(series: usize, t: u64, noise: f64) -> f64 {
    let phase = (series % 17) as f64 * 0.37;
    (2.0 * std::f64::consts::PI * (t as f64 / PERIOD as f64 + phase)).sin()
        + 0.001 * (series % 5) as f64 * t as f64
        + noise * noise_unit(series, t)
}

fn keys(n: usize) -> Vec<SeriesKey> {
    (0..n).map(|s| SeriesKey::new(format!("fleet/metric-{s}"))).collect()
}

/// Full-fleet rounds of ingest in `BATCH`-record chunks; returns points sent.
fn pump(engine: &mut FleetEngine, keys: &[SeriesKey], t0: u64, rounds: u64, noise: f64) -> u64 {
    let mut points = 0u64;
    for round in 0..rounds {
        let t = t0 + round;
        for (chunk_idx, chunk) in keys.chunks(BATCH).enumerate() {
            let batch: Vec<Record> = chunk
                .iter()
                .enumerate()
                .map(|(i, k)| {
                    Record::new(k.clone(), t, series_value(chunk_idx * BATCH + i, t, noise))
                })
                .collect();
            points += batch.len() as u64;
            engine.ingest(batch).expect("ingest");
        }
    }
    points
}

/// [`pump`] through the binary TCP frontend: the same batches, pipelined
/// through the client window so the socket round trip overlaps scoring.
fn net_pump(
    client: &mut NetClient,
    keys: &[SeriesKey],
    t0: u64,
    rounds: u64,
    noise: f64,
) -> u64 {
    let mut points = 0u64;
    for round in 0..rounds {
        let t = t0 + round;
        for (chunk_idx, chunk) in keys.chunks(BATCH).enumerate() {
            let batch: Vec<Record> = chunk
                .iter()
                .enumerate()
                .map(|(i, k)| {
                    Record::new(k.clone(), t, series_value(chunk_idx * BATCH + i, t, noise))
                })
                .collect();
            points += batch.len() as u64;
            client.submit(batch).expect("net submit");
        }
    }
    while client.drain().expect("net drain").is_some() {}
    points
}

fn main() {
    let cli = Cli::parse();
    let fleet_sizes: &[usize] = if cli.quick { &[1_000, 5_000] } else { &[10_000, 100_000] };
    let shard_counts = [1usize, 2, 4, 8];
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut runs: Vec<Run> = Vec::new();
    let mut report = Experiment::new("fleet_throughput", "Fleet engine throughput");

    // (workload, noise amplitude, fleet sizes, shard counts, shift search)
    type Regime<'a> = (&'static str, f64, &'a [usize], &'a [usize], ShiftSearchConfig);
    let storm_sizes: &[usize] = if cli.quick { &[1_000] } else { &[10_000] };
    // quick mode still measures the two committed regression-gate
    // configurations (steady 10k/100k at one shard), so CI's `bench_check`
    // can compare a freshly generated BENCH_fleet.json against the
    // baselines; the full run already covers them via `fleet_sizes`
    let gate_sizes: &[usize] = if cli.quick { &[10_000, 100_000] } else { &[] };
    let regimes: &[Regime<'_>] = &[
        ("steady", 0.05, fleet_sizes, &shard_counts, ShiftSearchConfig::default()),
        ("steady", 0.05, gate_sizes, &[1], ShiftSearchConfig::default()),
        // the anomaly-path tier, priced under both search policies
        ("storm", 0.0, storm_sizes, &[1, 4], ShiftSearchConfig::default()),
        ("storm-full", 0.0, storm_sizes, &[1, 4], ShiftSearchConfig::exhaustive()),
    ];
    for &(workload, noise, sizes, shard_set, shift_search) in regimes {
        for &n_series in sizes {
            let warm_rounds = (FleetConfig::default().init_len(PERIOD) + 8) as u64;
            let score_rounds: u64 = if cli.quick {
                4
            } else if n_series >= 100_000 {
                5
            } else {
                20
            };
            let keys = keys(n_series);

            // warm one engine to fully-live, snapshot it once
            eprintln!(
                "[fleet_throughput] {workload}: warming {n_series} series \
                 ({warm_rounds} rounds)…"
            );
            let t_warm = Instant::now();
            let mut warm = FleetEngine::new(FleetConfig {
                shards: 4,
                period: PeriodPolicy::Fixed(PERIOD),
                detector: OneShotStlConfig { shift_search, ..Default::default() },
                ..Default::default()
            })
            .expect("engine config");
            pump(&mut warm, &keys, 0, warm_rounds, noise);
            let stats = warm.stats().expect("stats");
            assert_eq!(stats.live, n_series, "all series live after warm-up");
            let snapshot = warm.snapshot_bytes().expect("snapshot");
            drop(warm);
            eprintln!(
                "[fleet_throughput]   warmed in {}, snapshot {:.1} MiB",
                fmt_duration(t_warm.elapsed()),
                snapshot.len() as f64 / (1 << 20) as f64
            );

            for &shards in shard_set {
                let t_restore = Instant::now();
                let mut engine = {
                    let snap = fleet::codec::decode(&snapshot).expect("decode");
                    FleetEngine::restore_with_shards(snap, shards).expect("restore")
                };
                let restore_s = t_restore.elapsed().as_secs_f64();
                let s0 = engine.stats().expect("stats");
                let t_run = Instant::now();
                let points = pump(&mut engine, &keys, warm_rounds, score_rounds, noise);
                let elapsed_s = t_run.elapsed().as_secs_f64();
                let s1 = engine.stats().expect("stats");
                let pps = points as f64 / elapsed_s;
                let anomaly_pct = 100.0 * (s1.anomalies - s0.anomalies) as f64 / points as f64;
                eprintln!(
                    "[fleet_throughput]   {workload} {n_series} series × {shards} shards: \
                     {points} pts in {} → {:.0} pts/s ({anomaly_pct:.1}% anomalous)",
                    fmt_duration(t_run.elapsed()),
                    pps
                );
                runs.push(Run {
                    workload,
                    series: n_series,
                    shards,
                    points,
                    elapsed_s,
                    points_per_sec: pps,
                    anomaly_pct,
                    restore_s,
                    snapshot_mib: snapshot.len() as f64 / (1 << 20) as f64,
                });
            }
        }
    }

    // network loopback tier: the steady workload pushed through the
    // binary TCP frontend (`fleet::net`) with a pipelined client window —
    // prices the frame codec + socket hop on top of in-process ingest
    let net_sizes: &[usize] = if cli.quick { &[1_000] } else { &[10_000] };
    for &n_series in net_sizes {
        let warm_rounds = (FleetConfig::default().init_len(PERIOD) + 8) as u64;
        let score_rounds: u64 = if cli.quick { 4 } else { 20 };
        let noise = 0.05;
        let keys = keys(n_series);
        eprintln!(
            "[fleet_throughput] net-steady: warming {n_series} series ({warm_rounds} rounds)…"
        );
        let mut warm = FleetEngine::new(FleetConfig {
            shards: 4,
            period: PeriodPolicy::Fixed(PERIOD),
            ..Default::default()
        })
        .expect("engine config");
        pump(&mut warm, &keys, 0, warm_rounds, noise);
        let snapshot = warm.snapshot_bytes().expect("snapshot");
        drop(warm);

        for shards in [1usize, 4] {
            let t_restore = Instant::now();
            let engine = {
                let snap = fleet::codec::decode(&snapshot).expect("decode");
                FleetEngine::restore_with_shards(snap, shards).expect("restore")
            };
            let restore_s = t_restore.elapsed().as_secs_f64();
            let server = NetServer::serve("127.0.0.1:0", engine).expect("serve loopback");
            let mut client = NetClient::connect(server.local_addr()).expect("connect");
            let s0 = client.stats().expect("stats");
            let t_run = Instant::now();
            let points = net_pump(&mut client, &keys, warm_rounds, score_rounds, noise);
            let elapsed_s = t_run.elapsed().as_secs_f64();
            let s1 = client.stats().expect("stats");
            server.shutdown();
            let pps = points as f64 / elapsed_s;
            let anomaly_pct = 100.0 * (s1.anomalies - s0.anomalies) as f64 / points as f64;
            eprintln!(
                "[fleet_throughput]   net-steady {n_series} series × {shards} shards: \
                 {points} pts in {} → {:.0} pts/s ({anomaly_pct:.1}% anomalous)",
                fmt_duration(t_run.elapsed()),
                pps
            );
            runs.push(Run {
                workload: "net-steady",
                series: n_series,
                shards,
                points,
                elapsed_s,
                points_per_sec: pps,
                anomaly_pct,
                restore_s,
                snapshot_mib: snapshot.len() as f64 / (1 << 20) as f64,
            });
        }
    }

    // BENCH_fleet.json — hand-rolled (the workspace is dependency-free)
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"fleet_throughput\",");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"quick\": {},", cli.quick);
    let _ = writeln!(json, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 == runs.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"series\": {}, \"shards\": {}, \
             \"points\": {}, \"elapsed_s\": {:.4}, \"points_per_sec\": {:.1}, \
             \"anomaly_pct\": {:.2}, \"restore_s\": {:.4}, \
             \"snapshot_mib\": {:.2}}}{comma}",
            r.workload,
            r.series,
            r.shards,
            r.points,
            r.elapsed_s,
            r.points_per_sec,
            r.anomaly_pct,
            r.restore_s,
            r.snapshot_mib
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_fleet.json", &json).expect("writing BENCH_fleet.json");
    eprintln!("[fleet_throughput] wrote BENCH_fleet.json");

    // markdown report
    let mut rows: Vec<Vec<String>> = Vec::new();
    for r in &runs {
        rows.push(vec![
            r.workload.to_string(),
            r.series.to_string(),
            r.shards.to_string(),
            r.points.to_string(),
            format!("{:.2}", r.elapsed_s),
            format!("{:.0}", r.points_per_sec),
            format!("{:.1}", r.anomaly_pct),
            format!("{:.2}", r.restore_s),
            format!("{:.1}", r.snapshot_mib),
        ]);
    }
    report.table(
        "Throughput (points/sec)",
        &[
            "workload",
            "series",
            "shards",
            "points",
            "elapsed (s)",
            "pts/sec",
            "anomalous %",
            "restore (s)",
            "snapshot (MiB)",
        ],
        &rows,
    );
    report.para(&format!(
        "host cores: {cores}; shard scaling is bounded by physical parallelism"
    ));
    report.finish();
}
