//! Table 3: univariate TSAD on the 17-family TSB-UAD stand-in suite,
//! scored by VUS-ROC, with average rank and total runtime per method.

use anomaly::{Damp, NSigmaDetector, NormA, Sand, StdNSigma, Stompi, TsadMethod};
use benchkit::adapters::{LstmLike, TranAdMethod, UsadMethod};
use benchkit::methods::{oneshotstl_tuned, tune_lambda};
use benchkit::paper::TABLE3_PAPER_AVG;
use benchkit::{fmt3, fmt_duration, Cli, Experiment};
use decomp::OnlineStl;
use std::time::{Duration, Instant};
use tskit::period::find_length;
use tskit::synth::tsad_suite;
use tsmetrics::{average_ranks, vus_roc};

fn methods(cli: &Cli) -> Vec<Box<dyn TsadMethod>> {
    let epochs = if cli.quick { 2 } else { 8 };
    let seed = cli.seed;
    vec![
        Box::new(LstmLike { epochs, seed }),
        Box::new(UsadMethod { epochs, seed }),
        Box::new(TranAdMethod { epochs, seed }),
        Box::new(NormA::default()),
        Box::new(Sand::default()),
        Box::new(Stompi::new(&[], 8)),
        Box::new(Damp::default()),
        Box::new(NSigmaDetector::default()),
        Box::new(StdNSigma::new("OnlineSTL", 5.0, OnlineStl::new)),
        Box::new(TunedOneShot),
    ]
}

/// OneShotSTL with λ tuned per series on the training prefix (§5.1.4).
struct TunedOneShot;

impl TsadMethod for TunedOneShot {
    fn name(&self) -> String {
        "OneShotSTL".into()
    }
    fn score(&mut self, train: &[f64], test: &[f64], period: usize) -> Vec<f64> {
        let lambda = tune_lambda(train, period);
        let mut inner = StdNSigma::new("OneShotSTL", 5.0, || oneshotstl_tuned(lambda));
        inner.score(train, test, period)
    }
}

fn main() {
    let cli = Cli::parse();
    let n_series = if cli.quick { 1 } else { 2 };
    let suite = tsad_suite(n_series, cli.seed);
    let mut ms = methods(&cli);
    let names: Vec<String> = ms.iter().map(|m| m.name()).collect();
    let mut exp = Experiment::new("table3", "Table 3 — TSAD VUS-ROC on the 17-family suite");
    exp.para(&format!(
        "{} families × {n_series} series; period detected with TSB-UAD's \
         `find_length`; VUS-ROC buffer up to one period.",
        suite.len()
    ));
    let mut value_rows: Vec<Vec<f64>> = Vec::new();
    let mut table_rows: Vec<Vec<String>> = Vec::new();
    let mut times = vec![Duration::ZERO; ms.len()];
    let mut csv = Vec::new();
    for family in &suite {
        let mut row_vals = vec![0.0f64; ms.len()];
        for series in &family.series {
            let period = find_length(series.train());
            let max_l = period.min(series.test().len() / 10).max(10);
            for (mi, m) in ms.iter_mut().enumerate() {
                let start = Instant::now();
                let scores = m.score(series.train(), series.test(), period);
                times[mi] += start.elapsed();
                let v = vus_roc(&scores, series.test_labels(), max_l, 8);
                row_vals[mi] += v / family.series.len() as f64;
            }
        }
        let mut row = vec![family.name.clone()];
        row.extend(row_vals.iter().map(|v| fmt3(*v)));
        table_rows.push(row);
        for (mi, v) in row_vals.iter().enumerate() {
            csv.push(vec![family.name.clone(), names[mi].clone(), format!("{v}")]);
        }
        value_rows.push(row_vals);
        eprintln!("{} done", family.name);
    }
    // averages, ranks, runtimes
    let m_count = ms.len();
    let avg: Vec<f64> = (0..m_count)
        .map(|mi| value_rows.iter().map(|r| r[mi]).sum::<f64>() / value_rows.len() as f64)
        .collect();
    let ranks = average_ranks(&value_rows, true);
    let mut avg_row = vec!["**Avg. VUS-ROC**".to_string()];
    avg_row.extend(avg.iter().map(|v| fmt3(*v)));
    table_rows.push(avg_row);
    let mut rank_row = vec!["**Avg. Rank**".to_string()];
    rank_row.extend(ranks.iter().map(|r| format!("{r:.2}")));
    table_rows.push(rank_row);
    let mut time_row = vec!["**Total time**".to_string()];
    time_row.extend(times.iter().map(|t| fmt_duration(*t)));
    table_rows.push(time_row);
    let mut paper_row = vec!["paper Avg.".to_string()];
    paper_row.extend(names.iter().map(|n| {
        TABLE3_PAPER_AVG
            .iter()
            .find(|(pn, _)| pn == n)
            .map(|(_, v)| fmt3(*v))
            .unwrap_or_else(|| "-".into())
    }));
    table_rows.push(paper_row);
    let mut headers: Vec<&str> = vec!["Dataset"];
    headers.extend(names.iter().map(String::as_str));
    exp.table("VUS-ROC per family", &headers, &table_rows);
    exp.csv("results", &["family", "method", "vus_roc"], &csv);
    exp.finish();
}
