//! Multi-horizon forecast quality + fleet forecast-call latency.
//!
//! Two questions, one binary:
//!
//! 1. **Quality** — does the §5 forecast recurrence
//!    `ŷ(t+h) = τ(t) + slope·Σφⁱ + v[(t+Δ+h) mod T]` beat the seasonal-naive
//!    baseline per horizon? Evaluated streaming: every model sees the same
//!    train split, then walks the test region one point at a time —
//!    forecast `1..=T/2` ahead, score each horizon against the realized
//!    future, observe the truth, repeat. Per-horizon MAE/sMAPE come from
//!    the same [`forecast::ErrorAcc`] accumulator the fleet's rolling
//!    tracker is built on. Two synthetic families:
//!
//!    - **seasonal** — random seasonal template (T = 24) + noise; the
//!      regime where seasonal-naive is hardest to beat (it repeats the
//!      last cycle, noise and all, while the STL seasonal averages it).
//!    - **trended** — seasonality + 0.05/step drift + noise, decomposed
//!      with the TSF protocol λ (`λ₁ = 1, λ₂ = 100`): the elastic trend
//!      tracks the drift, so `slope·h` extrapolates it while
//!      seasonal-naive flatlines.
//!
//! 2. **Latency** — what does a forecast call cost against a large live
//!    fleet? A fleet (100k series full mode, 2k under `--quick`/`--smoke`)
//!    is warmed to fully-live with forecast heads enabled, then timed on
//!    batched `forecast(keys, 24)` calls and single-key `forecast_one`.
//!
//! Emits `BENCH_forecast.json` in the working directory (every mode) and
//! a markdown report under `target/experiments/`. `--smoke` is the CI
//! quality gate: it **fails the process** when the undamped STL forecast
//! loses to seasonal-naive on h = 1 sMAPE over the seasonal family.

use benchkit::{Cli, Experiment};
use fleet::{FleetConfig, FleetEngine, ForecastOptions, PeriodPolicy, Record, SeriesKey};
use forecast::heads::StlForecaster;
use forecast::naive::{Naive, SeasonalNaive};
use forecast::traits::{Forecaster, OnlineForecaster};
use forecast::ErrorAcc;
use oneshotstl::system::Lambdas;
use oneshotstl::{OneShotStl, OneShotStlConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;
use tskit::synth::{gaussian_noise, SeasonTemplate};

const PERIOD: usize = 24;
const HORIZONS: [usize; 4] = [1, 2, 6, 12]; // 1..T/2

/// A model the streaming evaluator can walk: forecast from the current
/// clock, then advance by one observed truth. Unifies the online STL
/// wrapper with the batch baselines (whose `observe` is a cheap ring/level
/// update after one initial fit).
trait StreamModel {
    fn label(&self) -> String;
    fn start(&mut self, train: &[f64], period: usize);
    fn forecast(&self, horizon: usize) -> Vec<f64>;
    fn observe(&mut self, y: f64);
}

struct OnlineModel<F: OnlineForecaster>(F, &'static str);

impl<F: OnlineForecaster> StreamModel for OnlineModel<F> {
    fn label(&self) -> String {
        self.1.to_string()
    }
    fn start(&mut self, train: &[f64], period: usize) {
        self.0.init(train, period).expect("init on synthetic train");
    }
    fn forecast(&self, horizon: usize) -> Vec<f64> {
        self.0.forecast(horizon)
    }
    fn observe(&mut self, y: f64) {
        self.0.observe(y);
    }
}

struct BatchModel<F: Forecaster>(F);

impl<F: Forecaster> StreamModel for BatchModel<F> {
    fn label(&self) -> String {
        self.0.name()
    }
    fn start(&mut self, train: &[f64], period: usize) {
        self.0.fit(train, period).expect("fit on synthetic train");
    }
    fn forecast(&self, horizon: usize) -> Vec<f64> {
        self.0.forecast(horizon)
    }
    fn observe(&mut self, y: f64) {
        self.0.observe(y);
    }
}

/// One model's per-horizon errors over one family (pooled across series).
struct ModelRow {
    label: String,
    /// `(mae, smape)` per entry of [`HORIZONS`].
    errors: Vec<(f64, f64)>,
}

/// Walks `model` through every series of the family: init on the train
/// split, then at each test step forecast `max(HORIZONS)` ahead, fold
/// each horizon's error into its accumulator, and observe the truth.
fn evaluate<M: StreamModel>(mut model: M, family: &[Vec<f64>], train_len: usize) -> ModelRow {
    let h_max = *HORIZONS.iter().max().unwrap();
    let mut accs = vec![ErrorAcc::new(); HORIZONS.len()];
    for series in family {
        model.start(&series[..train_len], PERIOD);
        for t in train_len..series.len() - h_max {
            let pred = model.forecast(h_max);
            for (acc, &h) in accs.iter_mut().zip(&HORIZONS) {
                acc.record(series[t + h - 1], pred[h - 1]);
            }
            model.observe(series[t]);
        }
    }
    ModelRow {
        label: model.label(),
        errors: accs.iter().map(|a| (a.mae(), a.smape())).collect(),
    }
}

/// `n` seasonal-template series (+ optional drift) with noise; one fixed
/// construction per seed so every run compares identical streams.
fn family(n: usize, len: usize, drift: f64, seed: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(seed + s as u64);
            let template = SeasonTemplate::random(PERIOD, 3, &mut rng);
            let mut y = template.render(len, 2.0 + (s % 3) as f64);
            for (i, (v, e)) in y.iter_mut().zip(gaussian_noise(len, 0.05, &mut rng)).enumerate()
            {
                *v += e + drift * i as f64;
            }
            y
        })
        .collect()
}

/// The §5 forecaster under a given λ protocol and damping.
fn stl(lambdas: Lambdas, phi: f64) -> StlForecaster {
    StlForecaster::new(OneShotStl::new(OneShotStlConfig { lambdas, ..Default::default() }), phi)
}

fn run_family(
    name: &str,
    streams: &[Vec<f64>],
    train_len: usize,
    lambdas: Lambdas,
) -> Vec<ModelRow> {
    let rows = vec![
        evaluate(OnlineModel(stl(lambdas, 1.0), "STL+trend"), streams, train_len),
        evaluate(OnlineModel(stl(lambdas, 0.9), "STL+trend(phi=0.9)"), streams, train_len),
        evaluate(BatchModel(SeasonalNaive::default()), streams, train_len),
        evaluate(BatchModel(Naive::default()), streams, train_len),
    ];
    for r in &rows {
        let mut line = format!("[forecast_bench] {name:<9} {:<19}", r.label);
        for (&h, (mae, smape)) in HORIZONS.iter().zip(&r.errors) {
            let _ = write!(line, "  h={h} mae {mae:.4} smape {smape:.4}");
        }
        eprintln!("{line}");
    }
    rows
}

struct LatencyStats {
    fleet_size: usize,
    batch_keys: usize,
    batch_call_us: f64,
    per_key_us: f64,
    single_call_us: f64,
}

/// Warms a fully-live fleet with forecast heads on, then times forecast
/// calls against it (median of `iters` wall-clock samples).
fn fleet_latency(n_series: usize, shards: usize) -> LatencyStats {
    let horizon = PERIOD;
    let keys: Vec<SeriesKey> =
        (0..n_series).map(|s| SeriesKey::new(format!("fleet/metric-{s}"))).collect();
    let mut engine = FleetEngine::new(FleetConfig {
        shards,
        period: PeriodPolicy::Fixed(PERIOD),
        forecast: ForecastOptions { damping: 0.95, ..ForecastOptions::on() },
        ..Default::default()
    })
    .expect("valid config");
    // init_len = 3·24 = 72: one extra tick promotes every series to live
    for t in 0..73u64 {
        for chunk in keys.chunks(8192) {
            let batch: Vec<Record> = chunk
                .iter()
                .enumerate()
                .map(|(i, k)| {
                    let phase = (i % 17) as f64 * 0.37;
                    let v =
                        (2.0 * std::f64::consts::PI * (t as f64 / PERIOD as f64 + phase)).sin();
                    Record::new(k.clone(), t, v)
                })
                .collect();
            engine.ingest(batch).expect("warm ingest");
        }
    }
    assert_eq!(engine.stats().expect("stats").live, n_series, "fleet fully live");

    let batch_keys = keys.len().min(1024);
    let sample = &keys[..batch_keys];
    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    };
    let iters = 30;
    let mut batch_us = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let out = engine.forecast(sample, horizon).expect("forecast");
        assert_eq!(out.len(), batch_keys);
        batch_us.push(start.elapsed().as_secs_f64() * 1e6);
    }
    let mut single_us = Vec::with_capacity(iters);
    for i in 0..iters {
        let key = &keys[(i * 7919) % keys.len()];
        let start = Instant::now();
        engine.forecast_one(key, horizon).expect("forecast").expect("live");
        single_us.push(start.elapsed().as_secs_f64() * 1e6);
    }
    let batch_call_us = median(batch_us);
    LatencyStats {
        fleet_size: n_series,
        batch_keys,
        batch_call_us,
        per_key_us: batch_call_us / batch_keys as f64,
        single_call_us: median(single_us),
    }
}

fn main() {
    let cli = Cli::parse();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let quick = cli.quick || smoke;

    let (n_series, len) = if quick { (4, 12 * PERIOD) } else { (12, 24 * PERIOD) };
    let train_len = 6 * PERIOD;
    let tsf_lambdas = Lambdas { lambda1: 1.0, lambda2: 100.0, anchor: 1.0 };

    eprintln!("[forecast_bench] streaming multi-horizon evaluation (T = {PERIOD})...");
    let seasonal = family(n_series, len, 0.0, 42);
    let trended = family(n_series, len, 0.05, 1042);
    let seasonal_rows = run_family("seasonal", &seasonal, train_len, Lambdas::default());
    let trended_rows = run_family("trended", &trended, train_len, tsf_lambdas);

    eprintln!("[forecast_bench] fleet forecast-call latency...");
    let latency = if quick { fleet_latency(2_000, 4) } else { fleet_latency(100_000, 8) };
    eprintln!(
        "[forecast_bench] {} live series: batch({} keys) {:.1} µs/call \
         ({:.3} µs/key), single {:.1} µs/call",
        latency.fleet_size,
        latency.batch_keys,
        latency.batch_call_us,
        latency.per_key_us,
        latency.single_call_us
    );

    // ── the CI gate: STL must beat seasonal-naive where it counts ───────
    let find = |rows: &[ModelRow], label: &str| -> Vec<(f64, f64)> {
        rows.iter().find(|r| r.label == label).expect("model evaluated").errors.clone()
    };
    let stl_seasonal = find(&seasonal_rows, "STL+trend");
    let snaive_seasonal = find(&seasonal_rows, "SeasonalNaive");
    let (stl_h1, snaive_h1) = (stl_seasonal[0].1, snaive_seasonal[0].1);
    let mut failures: Vec<String> = Vec::new();
    // NaN-safe: a NaN metric must fail, not pass
    if !matches!(
        stl_h1.partial_cmp(&snaive_h1),
        Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
    ) {
        failures.push(format!(
            "STL forecast loses to seasonal-naive at h=1 on the seasonal family \
             (sMAPE {stl_h1:.4} vs {snaive_h1:.4})"
        ));
    }

    // ── reports ─────────────────────────────────────────────────────────
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"forecast_bench\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"period\": {PERIOD},");
    let _ = writeln!(
        json,
        "  \"horizons\": [{}],",
        HORIZONS.iter().map(|h| h.to_string()).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(json, "  \"families\": [");
    for (fi, (fname, rows)) in
        [("seasonal", &seasonal_rows), ("trended", &trended_rows)].iter().enumerate()
    {
        let _ = writeln!(json, "    {{\"family\": \"{fname}\", \"models\": [");
        for (i, r) in rows.iter().enumerate() {
            let comma = if i + 1 == rows.len() { "" } else { "," };
            let per_h = HORIZONS
                .iter()
                .zip(&r.errors)
                .map(|(h, (mae, smape))| {
                    format!("{{\"h\": {h}, \"mae\": {mae:.4}, \"smape\": {smape:.4}}}")
                })
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                json,
                "      {{\"model\": \"{}\", \"errors\": [{per_h}]}}{comma}",
                r.label
            );
        }
        let comma = if fi == 1 { "" } else { "," };
        let _ = writeln!(json, "    ]}}{comma}");
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"fleet_latency\": {{\"live_series\": {}, \"batch_keys\": {}, \
         \"batch_call_us\": {:.1}, \"per_key_us\": {:.3}, \"single_call_us\": {:.1}}}",
        latency.fleet_size,
        latency.batch_keys,
        latency.batch_call_us,
        latency.per_key_us,
        latency.single_call_us
    );
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_forecast.json", &json).expect("writing BENCH_forecast.json");
    eprintln!("[forecast_bench] wrote BENCH_forecast.json");

    let mut report =
        Experiment::new("forecast_bench", "Multi-horizon forecast quality + fleet latency");
    let header: Vec<String> = std::iter::once("model".to_string())
        .chain(HORIZONS.iter().flat_map(|h| [format!("h={h} MAE"), format!("h={h} sMAPE")]))
        .collect();
    for (fname, rows) in [("seasonal", &seasonal_rows), ("trended", &trended_rows)] {
        report.table(
            &format!("{fname} family: per-horizon forecast error"),
            &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            &rows
                .iter()
                .map(|r| {
                    std::iter::once(r.label.clone())
                        .chain(
                            r.errors
                                .iter()
                                .flat_map(|(m, s)| [format!("{m:.4}"), format!("{s:.4}")]),
                        )
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>(),
        );
    }
    report.para(&format!(
        "Streaming protocol: init on {train_len} points, then walk the test region \
         one point at a time (forecast 1..=T/2, score, observe). Trended family \
         decomposed with the TSF protocol lambdas (1, 100). Fleet latency: \
         {} live series with forecast heads, median of 30 calls.",
        latency.fleet_size
    ));
    report.finish();

    if failures.is_empty() {
        eprintln!(
            "[forecast_bench] OK: STL beats seasonal-naive at h=1 on the seasonal \
             family (sMAPE {stl_h1:.4} <= {snaive_h1:.4})"
        );
    } else {
        for f in &failures {
            eprintln!("[forecast_bench] FAIL: {f}");
        }
        std::process::exit(1);
    }
}
