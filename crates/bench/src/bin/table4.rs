//! Table 4: KDD21-style evaluation — each series has exactly one anomaly;
//! a method scores when its top-ranked point falls in the anomaly's
//! neighbourhood. Includes the paper's STD-prefilter + DAMP hybrids.

use anomaly::{
    Damp, NSigmaDetector, NormA, PrefilterDamp, Sand, StdNSigma, Stompi, TsadMethod,
};
use benchkit::adapters::{LstmLike, TranAdMethod, UsadMethod};
use benchkit::methods::{oneshotstl_tuned, tune_lambda};
use benchkit::paper::TABLE4_PAPER;
use benchkit::{fmt3, fmt_duration, Cli, Experiment};
use decomp::OnlineStl;
use std::time::{Duration, Instant};
use tskit::period::find_length;
use tskit::synth::kdd21_like;
use tsmetrics::kdd::kdd21_hit;

/// OneShotSTL with λ tuned per series on the training prefix (§5.1.4).
struct TunedOneShot;

impl TsadMethod for TunedOneShot {
    fn name(&self) -> String {
        "OneShotSTL".into()
    }
    fn score(&mut self, train: &[f64], test: &[f64], period: usize) -> Vec<f64> {
        let lambda = tune_lambda(train, period);
        let mut inner = StdNSigma::new("OneShotSTL", 5.0, || oneshotstl_tuned(lambda));
        inner.score(train, test, period)
    }
}

fn main() {
    let cli = Cli::parse();
    let n_series = if cli.quick { 5 } else { 25 };
    let tolerance = 100usize;
    let series = kdd21_like(n_series, cli.seed);
    let epochs = if cli.quick { 2 } else { 8 };
    let mut ms: Vec<Box<dyn TsadMethod>> = vec![
        Box::new(LstmLike { epochs, seed: cli.seed }),
        Box::new(UsadMethod { epochs, seed: cli.seed }),
        Box::new(TranAdMethod { epochs, seed: cli.seed }),
        Box::new(NormA::default()),
        Box::new(Stompi::new(&[], 8)),
        Box::new(Sand::default()),
        Box::new(Damp::default()),
        Box::new(NSigmaDetector::default()),
        Box::new(StdNSigma::new("OnlineSTL", 5.0, OnlineStl::new)),
        Box::new(TunedOneShot),
        Box::new(PrefilterDamp::new(NSigmaDetector::default())),
        Box::new(PrefilterDamp::new(StdNSigma::new("OnlineSTL", 5.0, OnlineStl::new))),
        Box::new(PrefilterDamp::new(TunedOneShot)),
    ];
    let mut exp = Experiment::new("table4", "Table 4 — KDD21-style top-1 accuracy");
    exp.para(&format!(
        "{n_series} single-anomaly series; hit = argmax score within \
         ±{tolerance} points of the event."
    ));
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for m in ms.iter_mut() {
        let name = m.name();
        let start = Instant::now();
        let mut hits = 0usize;
        for s in &series {
            let period = s.period.unwrap_or_else(|| find_length(s.train()));
            let scores = m.score(s.train(), s.test(), period);
            if kdd21_hit(&scores, s.test_labels(), tolerance) {
                hits += 1;
            }
        }
        let elapsed: Duration = start.elapsed();
        let score = hits as f64 / series.len() as f64;
        let paper = TABLE4_PAPER
            .iter()
            .find(|(pn, _)| *pn == name)
            .map(|(_, v)| fmt3(*v))
            .unwrap_or_else(|| "-".into());
        rows.push(vec![name.clone(), fmt3(score), fmt_duration(elapsed), paper]);
        csv.push(vec![name.clone(), format!("{score}"), format!("{}", elapsed.as_secs_f64())]);
        eprintln!("{name} done: {score:.3} in {}", fmt_duration(elapsed));
    }
    exp.table("KDD21 accuracy", &["Method", "Score", "Time", "paper"], &rows);
    exp.para(
        "Expected shape: matrix-profile methods (DAMP/NormA) lead, plain \
         NSigma trails, STD methods land in between, and the \
         OneShotSTL+DAMP hybrid approaches DAMP's accuracy at a fraction \
         of its runtime (the paper's 40× speed-up claim).",
    );
    exp.csv("results", &["method", "score", "seconds"], &csv);
    exp.finish();
}
