//! Fleet scale: millions of series per node via the cold tier.
//!
//! Protocol: series arrive in *waves*. Each wave admits a fresh slice of
//! the keyspace (fixed period 8, so a series is live after 24 points),
//! then the idle sweep runs and every previous wave — idle beyond
//! [`FleetConfig::spill_after`] — spills to the on-disk cold store. The
//! hot set therefore stays one wave wide while the admitted total climbs
//! to the target, which is how one node holds a million series: resident
//! memory and snapshot size track the *hot* set, the cold tier holds the
//! rest at its on-disk footprint.
//!
//! Per wave the run records admitted/hot/cold counts and resident memory
//! (`VmRSS`); periodically it also snapshots the hot set and times a full
//! restore. At the end a probe series that spilled in wave 0 is touched
//! again: its point must rehydrate through the normal shard path and
//! score **bit-identically** to a twin engine that kept the series hot
//! the whole time — the cold tier is invisible to detector semantics.
//!
//! Results merge into `BENCH_fleet.json` as a `"scale"` section (the
//! `"runs"` array written by `fleet_throughput` is preserved), plus a
//! markdown report under `target/experiments/`. `--smoke` shrinks the
//! target to a seconds-long CI gate; the full run admits 1M series.

use benchkit::{fmt_duration, Experiment};
use fleet::{
    codec, FleetConfig, FleetEngine, PeriodPolicy, Record, SeriesKey, StateCompression,
};
use std::fmt::Write as _;
use std::time::Instant;

const PERIOD: usize = 8;
const BATCH: usize = 8192;
const SPILL_AFTER: u64 = 16;

struct WaveRow {
    admitted: u64,
    hot: usize,
    cold: usize,
    rss_mib: f64,
    /// `Some((mib, restore_s))` on waves where the hot set was snapshotted
    /// and restored; `None` on unmeasured waves.
    snapshot: Option<(f64, f64)>,
}

/// Deterministic per-(series, t) noise in [-1, 1) (splitmix-style hash),
/// so the probe twin and any restore see the identical stream.
fn noise_unit(series: usize, t: u64) -> f64 {
    let mut s = (series as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ t.wrapping_mul(0x2545_f491_4f6c_dd1d);
    s ^= s >> 30;
    s = s.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    s ^= s >> 27;
    (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

fn series_value(series: usize, t: u64) -> f64 {
    let phase = (series % 17) as f64 * 0.37;
    (2.0 * std::f64::consts::PI * (t as f64 / PERIOD as f64 + phase)).sin()
        + 0.05 * noise_unit(series, t)
}

fn key_of(series: usize) -> SeriesKey {
    SeriesKey::new(format!("fleet/metric-{series}"))
}

/// One full-wave round of ingest at clock `t`, in `BATCH`-record chunks.
fn pump_round(engine: &mut FleetEngine, lo: usize, hi: usize, t: u64) {
    let mut series = lo;
    while series < hi {
        let end = (series + BATCH).min(hi);
        let batch: Vec<Record> =
            (series..end).map(|s| Record::new(key_of(s), t, series_value(s, t))).collect();
        engine.ingest(batch).expect("ingest");
        series = end;
    }
}

/// Resident set size of this process in MiB (Linux `/proc/self/status`).
fn rss_mib() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))
        .and_then(|l| l.split_whitespace().next())
        .and_then(|kb| kb.parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

/// Encoded snapshot size under `mode`, in bytes.
fn encoded_len(engine: &mut FleetEngine, mode: StateCompression) -> usize {
    let mut snap = engine.snapshot().expect("snapshot");
    snap.config.compression = mode;
    codec::encode(&snap).len()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (wave_series, waves, measure_every) =
        if smoke { (6_000usize, 4u64, 1u64) } else { (25_000usize, 40u64, 8u64) };
    let target = wave_series * waves as usize;

    let config = FleetConfig {
        shards: std::thread::available_parallelism().map_or(1, |n| n.get()).min(8),
        period: PeriodPolicy::Fixed(PERIOD),
        spill_after: Some(SPILL_AFTER),
        ..Default::default()
    };
    // a wave must be live (init_len points) and then observed idle past the
    // spill threshold by the *next* wave's sweep
    let wave_rounds = (config.init_len(PERIOD) + 2) as u64;
    assert!(wave_rounds > SPILL_AFTER, "waves must outlast the spill threshold");

    let cold_dir =
        std::env::temp_dir().join(format!("fleet_scale_cold_{}", std::process::id()));
    let mut engine = FleetEngine::new(config.clone()).expect("engine config");
    engine.attach_cold_dir(&cold_dir).expect("cold tier");

    // the probe's twin keeps series 0 hot forever (same config — including
    // the spill threshold, so sweep cadence matches — but no cold store
    // attached, which makes the spill branch a no-op)
    let mut twin = FleetEngine::new(FleetConfig { shards: 1, ..config.clone() }).expect("twin");

    eprintln!(
        "[fleet_scale] admitting {target} series in {waves} waves of {wave_series} \
         ({} shards, spill after {SPILL_AFTER} idle ticks)…",
        engine.shard_count()
    );
    let t_total = Instant::now();
    let mut rows: Vec<WaveRow> = Vec::new();
    let mut t = 0u64;
    for wave in 0..waves {
        let lo = wave as usize * wave_series;
        let hi = lo + wave_series;
        for _ in 0..wave_rounds {
            pump_round(&mut engine, lo, hi, t);
            if wave == 0 {
                twin.ingest_one(key_of(0), t, series_value(0, t)).expect("twin ingest");
            }
            t += 1;
        }
        // the sweep spills every previous wave (idle ≥ wave_rounds > threshold)
        engine.evict_idle(t).expect("sweep");
        let stats = engine.stats().expect("stats");
        assert_eq!(stats.admitted, (wave + 1) * wave_series as u64, "wave fully admitted");
        assert_eq!(stats.cold_errors, 0, "no degraded cold-tier operations");
        let snapshot = if (wave + 1) % measure_every == 0 || wave + 1 == waves {
            let bytes = engine.snapshot_bytes().expect("snapshot");
            let t_restore = Instant::now();
            let restored = FleetEngine::restore_bytes(&bytes).expect("restore");
            let restore_s = t_restore.elapsed().as_secs_f64();
            drop(restored);
            Some((bytes.len() as f64 / (1 << 20) as f64, restore_s))
        } else {
            None
        };
        let row = WaveRow {
            admitted: stats.admitted,
            hot: stats.live,
            cold: stats.cold_resident,
            rss_mib: rss_mib(),
            snapshot,
        };
        eprintln!(
            "[fleet_scale]   wave {:>2}: {:>8} admitted, {:>6} hot, {:>8} cold, rss {:.0} MiB{}",
            wave + 1,
            row.admitted,
            row.hot,
            row.cold,
            row.rss_mib,
            row.snapshot.map_or(String::new(), |(mib, s)| format!(
                ", snapshot {mib:.1} MiB restored in {s:.2}s"
            ))
        );
        rows.push(row);
    }

    // per-series snapshot footprint of the hot set, exact vs. compact codec
    let live = engine.stats().expect("stats").live;
    let bytes_exact = encoded_len(&mut engine, StateCompression::Exact) as f64 / live as f64;
    let bytes_compact =
        encoded_len(&mut engine, StateCompression::Compact) as f64 / live as f64;

    // touch the wave-0 probe: it spilled long ago and must rehydrate
    // through the normal shard path, scoring bit-identically to the twin
    let pre = engine.stats().expect("stats");
    assert!(pre.spills >= (waves - 1) * wave_series as u64, "previous waves spilled");
    for i in 0..3u64 {
        let got = engine.ingest_one(key_of(0), t + i, series_value(0, t + i)).expect("probe");
        let want = twin.ingest_one(key_of(0), t + i, series_value(0, t + i)).expect("twin");
        assert_eq!(got.output, want.output, "rehydrated probe diverged at t+{i}");
    }
    let post = engine.stats().expect("stats");
    assert!(post.rehydrations >= 1, "probe rehydrated from the cold tier");
    assert_eq!(post.cold_errors, 0, "no degraded cold-tier operations");

    let last = rows.last().expect("at least one wave");
    let (snap_mib, restore_s) = last.snapshot.expect("final wave measures the snapshot");
    assert_eq!(last.admitted, target as u64, "full target admitted");
    assert!(restore_s < 1.0, "hot-set restore took {restore_s:.2}s (must be < 1s)");
    eprintln!(
        "[fleet_scale] {} series in {} — final hot {}, cold {}, rss {:.0} MiB, \
         {bytes_exact:.0} B/series exact ({bytes_compact:.0} compact)",
        last.admitted,
        fmt_duration(t_total.elapsed()),
        post.live,
        post.cold_resident,
        last.rss_mib,
    );

    // merge a "scale" section into BENCH_fleet.json, preserving the "runs"
    // array fleet_throughput wrote (hand-rolled: the workspace is
    // dependency-free)
    let mut scale = String::new();
    let _ = writeln!(scale, "{{");
    let _ = writeln!(scale, "    \"series_total\": {target},");
    let _ = writeln!(scale, "    \"waves\": {waves},");
    let _ = writeln!(scale, "    \"wave_series\": {wave_series},");
    let _ = writeln!(scale, "    \"shards\": {},", engine.shard_count());
    let _ = writeln!(scale, "    \"smoke\": {smoke},");
    let _ = writeln!(scale, "    \"spills\": {},", post.spills);
    let _ = writeln!(scale, "    \"rehydrations\": {},", post.rehydrations);
    let _ = writeln!(scale, "    \"bytes_per_series_exact\": {bytes_exact:.1},");
    let _ = writeln!(scale, "    \"bytes_per_series_compact\": {bytes_compact:.1},");
    let _ = writeln!(
        scale,
        "    \"final\": {{\"hot\": {}, \"cold_resident\": {}, \"rss_mib\": {:.1}, \
         \"snapshot_mib\": {snap_mib:.2}, \"restore_s\": {restore_s:.4}}},",
        post.live, post.cold_resident, last.rss_mib
    );
    let _ = writeln!(scale, "    \"curve\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let snap = r.snapshot.map_or(String::new(), |(mib, s)| {
            format!(", \"snapshot_mib\": {mib:.2}, \"restore_s\": {s:.4}")
        });
        let _ = writeln!(
            scale,
            "      {{\"admitted\": {}, \"hot\": {}, \"cold_resident\": {}, \
             \"rss_mib\": {:.1}{snap}}}{comma}",
            r.admitted, r.hot, r.cold, r.rss_mib
        );
    }
    let _ = writeln!(scale, "    ]");
    let _ = write!(scale, "  }}");

    let path = "BENCH_fleet.json";
    let merged = match std::fs::read_to_string(path) {
        Ok(existing) => {
            // drop any prior scale section, then re-open the outer object
            let base = match existing.find(",\n  \"scale\"") {
                Some(i) => existing[..i].to_string(),
                None => existing
                    .trim_end()
                    .strip_suffix('}')
                    .map(|s| s.trim_end().to_string())
                    .unwrap_or_default(),
            };
            if base.is_empty() {
                format!("{{\n  \"scale\": {scale}\n}}\n")
            } else {
                format!("{base},\n  \"scale\": {scale}\n}}\n")
            }
        }
        Err(_) => format!("{{\n  \"scale\": {scale}\n}}\n"),
    };
    std::fs::write(path, merged).expect("writing BENCH_fleet.json");
    eprintln!("[fleet_scale] merged \"scale\" section into BENCH_fleet.json");

    // markdown report
    let mut report = Experiment::new("fleet_scale", "Fleet scale via the cold tier");
    let mut table: Vec<Vec<String>> = Vec::new();
    for r in &rows {
        table.push(vec![
            r.admitted.to_string(),
            r.hot.to_string(),
            r.cold.to_string(),
            format!("{:.0}", r.rss_mib),
            r.snapshot.map_or("—".into(), |(mib, _)| format!("{mib:.1}")),
            r.snapshot.map_or("—".into(), |(_, s)| format!("{s:.2}")),
        ]);
    }
    report.table(
        "Scale curve (per wave)",
        &["admitted", "hot", "cold", "rss (MiB)", "snapshot (MiB)", "restore (s)"],
        &table,
    );
    report.para(&format!(
        "{target} series admitted; hot-set snapshot {snap_mib:.1} MiB restored in \
         {restore_s:.2}s; {bytes_exact:.0} B/series exact, {bytes_compact:.0} compact; \
         probe rehydration bit-identical to an always-hot twin"
    ));
    report.finish();

    drop(engine);
    let _ = std::fs::remove_dir_all(&cold_dir);
    println!("[fleet_scale] OK");
}
