//! Quality/cost ablation of the two-stage §3.4 shift search, plus the
//! `iters` accuracy/footprint ablation.
//!
//! The pruned search is behavior-changing, so its default `k` must be
//! chosen by data: this binary sweeps `k` on the paper's
//! shifted-seasonality workloads (Syn2-style streams whose phase
//! permanently drifts mid-stream, at several noise levels) and records,
//! per policy:
//!
//! - decomposition MAE against the known clean signal, and the MAE gap
//!   vs the exhaustive (`prune: Off`) search,
//! - full IRLS trials per flagged point (the cost the pruning bounds),
//! - wall time per update.
//!
//! A second sweep compares `iters: 4` vs `iters: 8` (accuracy vs
//! per-series state footprint — ROADMAP's "shrink per-series state" open
//! question).
//!
//! Modes: the default run emits `BENCH_shift_ablation.json` plus a
//! markdown report under `target/experiments/`; `--smoke` is the CI
//! gate — a reduced sweep that **fails the process** when the default
//! pruned policy regresses (MAE gap vs full search > 1%, or more than
//! `k + 1` trials per flagged point).

use benchkit::{Cli, Experiment};
use decomp::traits::OnlineDecomposer;
use oneshotstl::{
    OneShotStl, OneShotStlConfig, OneShotStlState, ShiftSearchConfig, SolverState,
    DEFAULT_SHIFT_TOP_K,
};
use std::fmt::Write as _;
use std::time::Instant;

const PERIOD: usize = 50;
const INIT_CYCLES: usize = 4;

/// Deterministic noise in [-1, 1): splitmix-style hash of (seed, i), so
/// every policy sees the identical stream.
fn noise_unit(seed: u64, i: usize) -> f64 {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
    s ^= s >> 30;
    s = s.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    s ^= s >> 27;
    (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// One shifted-seasonality fixture: `(values, clean)` where `clean` is
/// the noise-free seasonal + trend signal the decomposition should
/// recover. The phase permanently shifts by +6 a third of the way in and
/// by a further −4 at two thirds — the paper's Syn2 scenario, twice.
fn fixture(seed: u64, noise_amp: f64, n: usize) -> (Vec<f64>, Vec<f64>) {
    let (s1, s2) = (n / 3, 2 * n / 3);
    let mut values = Vec::with_capacity(n);
    let mut clean = Vec::with_capacity(n);
    for i in 0..n {
        let delta = if i >= s2 {
            2usize // +6 then −4, cumulative
        } else if i >= s1 {
            6
        } else {
            0
        };
        let phase = (i + PERIOD - delta) % PERIOD;
        let c = 3.0 * (2.0 * std::f64::consts::PI * phase as f64 / PERIOD as f64).sin()
            + 0.002 * i as f64;
        clean.push(c);
        values.push(c + noise_amp * noise_unit(seed, i));
    }
    (values, clean)
}

struct RunOut {
    /// MAE of `τ̂ + ŝ` against the clean signal, post-first-shift region.
    mae: f64,
    /// Flagged points (shift searches run).
    searches: u64,
    /// Full IRLS trials those searches ran (incl. the Δt = 0 baseline).
    trials: u64,
    /// Nanoseconds per online update.
    ns_per_update: f64,
    /// Per-series state footprint (serialized f64/u64 payload words × 8).
    state_bytes: usize,
}

/// Streams one fixture through a model and scores it.
fn run(values: &[f64], clean: &[f64], cfg: OneShotStlConfig) -> RunOut {
    let init = INIT_CYCLES * PERIOD;
    let mut m = OneShotStl::new(cfg);
    m.init(&values[..init], PERIOD).unwrap();
    let t0 = Instant::now();
    let mut abs_err = 0.0;
    let mut scored = 0usize;
    let first_shift = values.len() / 3;
    for (i, &v) in values[init..].iter().enumerate() {
        let p = m.update(v);
        // score where it is hard: from the first phase shift onward
        if init + i >= first_shift {
            abs_err += (p.trend + p.seasonal - clean[init + i]).abs();
            scored += 1;
        }
    }
    let elapsed = t0.elapsed().as_nanos() as f64;
    let (searches, trials) = m.shift_search_stats();
    RunOut {
        mae: abs_err / scored as f64,
        searches,
        trials,
        ns_per_update: elapsed / (values.len() - init) as f64,
        state_bytes: state_bytes(&m.to_state()),
    }
}

/// Serialized size of the per-series numeric state (the footprint the
/// `iters` ablation trades against accuracy): 8 bytes per f64/u64 word.
fn state_bytes(st: &OneShotStlState) -> usize {
    let mut words = st.v.len() + 2 + 2; // v, y_hist, u_hist
    for it in &st.iters {
        words += 6; // pw/qw/tau histories
        words += match &it.solver {
            SolverState::Warmup { y, u, pw, qw } => y.len() + u.len() + pw.len() + qw.len(),
            SolverState::Steady { lo, dd, zo, .. } => 1 + lo.len() + dd.len() + zo.len(),
        };
    }
    (words + 4) * 8 // + NSigma running stats
}

struct PolicyRow {
    label: String,
    k: Option<usize>,
    mae: f64,
    mae_gap_pct: f64,
    trials_per_search: f64,
    ns_per_update: f64,
}

fn main() {
    let cli = Cli::parse();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let quick = cli.quick || smoke;
    let n: usize = if quick { 1_800 } else { 6_000 };
    let fixtures: Vec<(u64, f64)> = if quick {
        vec![(1, 0.02), (2, 0.1)]
    } else {
        vec![(1, 0.02), (2, 0.05), (3, 0.1), (4, 0.2), (5, 0.05), (6, 0.1)]
    };
    let streams: Vec<(Vec<f64>, Vec<f64>)> =
        fixtures.iter().map(|&(seed, amp)| fixture(seed, amp, n)).collect();

    let h = OneShotStlConfig::default().shift_window; // 20 → 41-offset search
    let ks: Vec<usize> =
        if quick { vec![1, DEFAULT_SHIFT_TOP_K, 16] } else { vec![1, 2, 4, 8, 16] };

    // ── sweep 1: pruning policy ─────────────────────────────────────────
    let policies: Vec<(String, Option<usize>, ShiftSearchConfig)> =
        std::iter::once(("full (Off)".to_string(), None, ShiftSearchConfig::exhaustive()))
            .chain(
                ks.iter()
                    .map(|&k| (format!("TopK({k})"), Some(k), ShiftSearchConfig::top_k(k))),
            )
            .collect();
    let mut rows: Vec<PolicyRow> = Vec::new();
    let mut full_mae = 0.0;
    for (label, k, search) in &policies {
        let mut mae = 0.0;
        let mut searches = 0u64;
        let mut trials = 0u64;
        let mut ns = 0.0;
        for (values, clean) in &streams {
            let out = run(
                values,
                clean,
                OneShotStlConfig { shift_search: *search, ..Default::default() },
            );
            mae += out.mae;
            searches += out.searches;
            trials += out.trials;
            ns += out.ns_per_update;
        }
        mae /= streams.len() as f64;
        ns /= streams.len() as f64;
        if k.is_none() {
            full_mae = mae;
        }
        let row = PolicyRow {
            label: label.clone(),
            k: *k,
            mae,
            mae_gap_pct: 100.0 * (mae - full_mae) / full_mae,
            trials_per_search: if searches > 0 { trials as f64 / searches as f64 } else { 0.0 },
            ns_per_update: ns,
        };
        eprintln!(
            "[shift_ablation] {:<12} mae {:.5} (gap {:+.2}%), {:.1} trials/flagged, {:.0} ns/update",
            row.label, row.mae, row.mae_gap_pct, row.trials_per_search, row.ns_per_update
        );
        rows.push(row);
    }

    // ── sweep 2: iters 4 vs 8 (accuracy vs footprint) ───────────────────
    struct ItersRow {
        iters: usize,
        mae: f64,
        state_bytes: usize,
        ns_per_update: f64,
    }
    let mut iters_rows: Vec<ItersRow> = Vec::new();
    for iters in [4usize, 8] {
        let mut mae = 0.0;
        let mut ns = 0.0;
        let mut bytes = 0usize;
        for (values, clean) in &streams {
            let out = run(values, clean, OneShotStlConfig { iters, ..Default::default() });
            mae += out.mae;
            ns += out.ns_per_update;
            bytes = out.state_bytes;
        }
        mae /= streams.len() as f64;
        ns /= streams.len() as f64;
        eprintln!(
            "[shift_ablation] iters={iters}: mae {mae:.5}, {bytes} B/series state, \
             {ns:.0} ns/update"
        );
        iters_rows.push(ItersRow { iters, mae, state_bytes: bytes, ns_per_update: ns });
    }

    // ── the CI gate: the shipped default must hold its quality bar ──────
    let default_row = rows
        .iter()
        .find(|r| r.k == Some(DEFAULT_SHIFT_TOP_K))
        .expect("sweep covers the default k");
    let mut failures: Vec<String> = Vec::new();
    // NaN-safe gates: a NaN metric must fail, not pass
    if default_row.mae_gap_pct.is_nan() || default_row.mae_gap_pct > 1.0 {
        failures.push(format!(
            "default TopK({DEFAULT_SHIFT_TOP_K}) MAE gap vs full search is \
             {:+.2}% (> +1%)",
            default_row.mae_gap_pct
        ));
    }
    let bound = (DEFAULT_SHIFT_TOP_K + 1) as f64;
    if default_row.trials_per_search.is_nan() || default_row.trials_per_search > bound + 1e-9 {
        failures.push(format!(
            "default TopK({DEFAULT_SHIFT_TOP_K}) ran {:.2} full trials per flagged point \
             (bound: {bound})",
            default_row.trials_per_search
        ));
    }

    // ── reports ─────────────────────────────────────────────────────────
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"shift_ablation\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"shift_window\": {h},");
    let _ = writeln!(json, "  \"default_top_k\": {DEFAULT_SHIFT_TOP_K},");
    let _ = writeln!(json, "  \"policies\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"policy\": \"{}\", \"k\": {}, \"mae\": {:.6}, \"mae_gap_pct\": {:.3}, \
             \"trials_per_flagged\": {:.2}, \"ns_per_update\": {:.0}}}{comma}",
            r.label,
            r.k.map_or("null".to_string(), |k| k.to_string()),
            r.mae,
            r.mae_gap_pct,
            r.trials_per_search,
            r.ns_per_update
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"iters_ablation\": [");
    for (i, r) in iters_rows.iter().enumerate() {
        let comma = if i + 1 == iters_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"iters\": {}, \"mae\": {:.6}, \"state_bytes\": {}, \
             \"ns_per_update\": {:.0}}}{comma}",
            r.iters, r.mae, r.state_bytes, r.ns_per_update
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_shift_ablation.json", &json)
        .expect("writing BENCH_shift_ablation.json");
    eprintln!("[shift_ablation] wrote BENCH_shift_ablation.json");

    let mut report = Experiment::new("shift_ablation", "Two-stage shift search ablation");
    report.table(
        "Pruning policy vs quality/cost",
        &["policy", "MAE", "gap vs full %", "trials/flagged", "ns/update"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    format!("{:.5}", r.mae),
                    format!("{:+.2}", r.mae_gap_pct),
                    format!("{:.1}", r.trials_per_search),
                    format!("{:.0}", r.ns_per_update),
                ]
            })
            .collect::<Vec<_>>(),
    );
    report.table(
        "IRLS iterations vs accuracy/footprint",
        &["iters", "MAE", "state bytes/series", "ns/update"],
        &iters_rows
            .iter()
            .map(|r| {
                vec![
                    r.iters.to_string(),
                    format!("{:.5}", r.mae),
                    r.state_bytes.to_string(),
                    format!("{:.0}", r.ns_per_update),
                ]
            })
            .collect::<Vec<_>>(),
    );
    report.para(&format!(
        "{} fixtures × {n} points, period {PERIOD}, shift window H = {h} \
         (full search = {} trials/flagged). MAE is |τ̂+ŝ − clean| from the \
         first phase shift onward.",
        streams.len(),
        2 * h + 1
    ));
    report.finish();

    if failures.is_empty() {
        eprintln!(
            "[shift_ablation] OK: default TopK({DEFAULT_SHIFT_TOP_K}) holds the quality bar \
             (gap {:+.2}% ≤ +1%, {:.1} ≤ {bound} trials/flagged)",
            default_row.mae_gap_pct, default_row.trials_per_search
        );
    } else {
        for f in &failures {
            eprintln!("[shift_ablation] FAIL: {f}");
        }
        std::process::exit(1);
    }
}
