//! Figures 5–6: decomposed trend/seasonal/residual series on Syn1, Syn2,
//! Real1 and Real2 for RobustSTL, OnlineSTL, OnlineRobustSTL and
//! OneShotSTL. The paper shows these as plots; this binary writes one CSV
//! per dataset with the full component series for plotting.

use benchkit::methods::{oneshotstl_tuned, tune_lambda};
use benchkit::{Cli, Experiment};
use decomp::traits::{BatchDecomposer, OnlineDecomposer};
use decomp::{OnlineRobustStl, OnlineStl, RobustStl};
use tskit::io::write_csv_columns;
use tskit::synth::{real1_like, real2_like, syn1, syn2, StdDataset};

fn run(ds: &StdDataset, exp: &mut Experiment) {
    let t = ds.period;
    let split = 4 * t;
    let mut headers: Vec<String> = vec!["y".into()];
    let mut columns: Vec<Vec<f64>> = vec![ds.values.clone()];
    // batch reference
    if let Ok(d) = RobustStl::new().decompose(&ds.values, t) {
        for (suffix, series) in
            [("trend", d.trend), ("seasonal", d.seasonal), ("residual", d.residual)]
        {
            headers.push(format!("RobustSTL_{suffix}"));
            columns.push(series);
        }
    }
    // online methods
    let lambda = tune_lambda(&ds.values[..split], t);
    let mut online: Vec<Box<dyn OnlineDecomposer>> = vec![
        Box::new(OnlineStl::new()),
        Box::new(OnlineRobustStl::new()),
        Box::new(oneshotstl_tuned(lambda)),
    ];
    for m in online.iter_mut() {
        if let Ok(d) = m.run_series(&ds.values, t, split) {
            for (suffix, series) in
                [("trend", d.trend), ("seasonal", d.seasonal), ("residual", d.residual)]
            {
                headers.push(format!("{}_{suffix}", m.name()));
                columns.push(series);
            }
        }
    }
    let path = Experiment::dir().join(format!("fig5_6_{}.csv", ds.name.to_lowercase()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    match write_csv_columns(&path, &header_refs, &columns) {
        Ok(()) => exp.para(&format!(
            "- `{}`: {} series of length {} (λ = {lambda})",
            path.display(),
            headers.len(),
            ds.values.len()
        )),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn main() {
    let cli = Cli::parse();
    let mut exp = Experiment::new(
        "fig5_6",
        "Figures 5–6 — decomposed component series (CSV for plotting)",
    );
    exp.para(
        "Each CSV holds the observed series plus trend/seasonal/residual \
         columns per method. The paper's qualitative claims to check: \
         OneShotSTL and RobustSTL track the abrupt trend jump (Syn1/Real1) \
         and absorb the seasonality shift (Syn2), while OnlineSTL smooths \
         the jump away and leaks the shift into trend and residual.",
    );
    for ds in [syn1(cli.seed), syn2(cli.seed), real1_like(cli.seed), real2_like(cli.seed)] {
        run(&ds, &mut exp);
    }
    exp.finish();
}
