//! Extra ablation (DESIGN.md §6): STL vs batch-JointSTL initialization of
//! OneShotSTL, measured by decomposition MAE on Syn1/Syn2.

use benchkit::{fmt3, Cli, Experiment};
use decomp::traits::OnlineDecomposer;
use oneshotstl::oneshot::{InitMethod, OneShotStlConfig};
use oneshotstl::system::Lambdas;
use oneshotstl::OneShotStl;
use tskit::synth::{syn1, syn2};
use tsmetrics::DecompErrors;

fn main() {
    let cli = Cli::parse();
    let mut exp = Experiment::new(
        "ablation_init",
        "Ablation — STL vs JointSTL initialization (Algorithm 5, line 1)",
    );
    exp.para(
        "The paper allows either initialization. JointSTL is \
         model-consistent but costlier for long periods; the online phase \
         should converge to similar quality either way because the seasonal \
         buffer keeps being rewritten.",
    );
    let mut rows = Vec::new();
    for ds in [syn1(cli.seed), syn2(cli.seed)] {
        let truth = ds.truth.as_ref().expect("synthetic ground truth");
        let t = ds.period;
        let split = 4 * t;
        for (label, init) in [("STL", InitMethod::Stl), ("JointSTL", InitMethod::JointStl)] {
            let cfg = OneShotStlConfig {
                lambdas: Lambdas { lambda1: 100.0, lambda2: 100.0, anchor: 1.0 },
                init,
                ..Default::default()
            };
            let mut m = OneShotStl::new(cfg);
            match m.run_series(&ds.values, t, split) {
                Ok(d) => {
                    let e = DecompErrors::over_range(&d, truth, split..ds.values.len());
                    rows.push(vec![
                        ds.name.clone(),
                        label.to_string(),
                        fmt3(e.trend),
                        fmt3(e.seasonal),
                        fmt3(e.residual),
                    ]);
                }
                Err(e) => eprintln!("{} init {label} failed: {e}", ds.name),
            }
        }
        eprintln!("{} done", ds.name);
    }
    exp.table(
        "online-region MAE by initialization method",
        &["Dataset", "Init", "Trend MAE", "Seasonal MAE", "Residual MAE"],
        &rows,
    );
    exp.finish();
}
