//! Network ingest microbenchmark: frame codec throughput in isolation,
//! then end-to-end loopback TCP ingest frames/s against a live fleet.
//!
//! Two tiers, reported separately so regressions localize:
//!
//! - **codec** — encode + decode of ingest-batch frames in memory, no
//!   socket and no engine: the ceiling the wire format itself imposes.
//! - **loopback** — a [`NetServer`] on 127.0.0.1 with a warmed fleet, a
//!   [`NetClient`] pipelining ingest batches through its window: the
//!   number a remote producer actually sees (frames/s and points/s,
//!   scoring included).
//!
//! Emits `BENCH_ingest.json` in the working directory and a markdown
//! report under `target/experiments/`.
//!
//! `--smoke` (also implied by `--quick`) runs a seconds-scale pass and
//! asserts the loopback path returns a scored reply for a pushed frame —
//! the CI gate that the server, client, and codec agree end to end. It
//! prints `ingest_bench OK` on success; CI greps for that line.

use benchkit::{fmt_duration, Cli, Experiment};
use fleet::net::{decode_frame_exact, encode_frame_into, NetMessage};
use fleet::{FleetConfig, FleetEngine, NetClient, NetServer, PeriodPolicy, Record, SeriesKey};
use std::fmt::Write as _;
use std::time::Instant;

const PERIOD: usize = 24;

struct Run {
    tier: &'static str,
    series: usize,
    batch: usize,
    frames: u64,
    points: u64,
    elapsed_s: f64,
    frames_per_sec: f64,
    points_per_sec: f64,
}

fn series_value(series: usize, t: u64) -> f64 {
    let phase = (series % 17) as f64 * 0.37;
    (2.0 * std::f64::consts::PI * (t as f64 / PERIOD as f64 + phase)).sin()
        + 0.05 * ((t as f64 * 13.7 + series as f64).sin())
}

fn batch_at(keys: &[SeriesKey], lo: usize, hi: usize, t: u64) -> Vec<Record> {
    keys[lo..hi]
        .iter()
        .enumerate()
        .map(|(i, k)| Record::new(k.clone(), t, series_value(lo + i, t)))
        .collect()
}

fn main() {
    let cli = Cli::parse();
    let smoke = cli.quick || std::env::args().any(|a| a == "--smoke");
    let (n_series, batch_size, rounds) =
        if smoke { (512usize, 256usize, 8u64) } else { (10_000, 1_024, 40) };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let keys: Vec<SeriesKey> =
        (0..n_series).map(|s| SeriesKey::new(format!("net/metric-{s}"))).collect();
    let mut runs: Vec<Run> = Vec::new();
    let mut report = Experiment::new("ingest_bench", "Network ingest throughput");

    // --- tier 1: frame codec in isolation -------------------------------
    {
        let mut frame = Vec::new();
        let mut frames = 0u64;
        let mut points = 0u64;
        let mut sink = 0u64; // fold decoded values in so nothing is optimized away
        let t_run = Instant::now();
        for round in 0..rounds {
            for lo in (0..n_series).step_by(batch_size) {
                let hi = (lo + batch_size).min(n_series);
                let msg = NetMessage::IngestBatch(batch_at(&keys, lo, hi, round));
                encode_frame_into(&mut frame, &msg);
                match decode_frame_exact(&frame).expect("own frame decodes") {
                    NetMessage::IngestBatch(recs) => {
                        points += recs.len() as u64;
                        sink ^= recs.last().map_or(0, |r| r.value.to_bits());
                    }
                    _ => unreachable!("ingest frames decode to ingest batches"),
                }
                frames += 1;
            }
        }
        let elapsed_s = t_run.elapsed().as_secs_f64();
        assert_ne!(sink, 1); // keep the decode loop observable
        eprintln!(
            "[ingest_bench] codec: {frames} frames / {points} pts in {} → \
             {:.0} frames/s, {:.0} pts/s",
            fmt_duration(t_run.elapsed()),
            frames as f64 / elapsed_s,
            points as f64 / elapsed_s
        );
        runs.push(Run {
            tier: "codec",
            series: n_series,
            batch: batch_size,
            frames,
            points,
            elapsed_s,
            frames_per_sec: frames as f64 / elapsed_s,
            points_per_sec: points as f64 / elapsed_s,
        });
    }

    // --- tier 2: loopback TCP against a warmed fleet ---------------------
    {
        let mut engine = FleetEngine::new(FleetConfig {
            shards: 2,
            period: PeriodPolicy::Fixed(PERIOD),
            ..Default::default()
        })
        .expect("engine config");
        let warm_rounds = (FleetConfig::default().init_len(PERIOD) + 4) as u64;
        eprintln!("[ingest_bench] loopback: warming {n_series} series…");
        for t in 0..warm_rounds {
            for lo in (0..n_series).step_by(batch_size) {
                let hi = (lo + batch_size).min(n_series);
                engine.ingest(batch_at(&keys, lo, hi, t)).expect("warm-up ingest");
            }
        }
        let live = engine.stats().expect("stats").live;
        assert_eq!(live, n_series, "fleet fully live before the timed pass");

        let server = NetServer::serve("127.0.0.1:0", engine).expect("serve loopback");
        let mut client = NetClient::connect(server.local_addr()).expect("connect");

        // the CI smoke contract: one pushed frame batch comes back scored
        let probe = client
            .ingest(batch_at(&keys, 0, batch_size.min(n_series), warm_rounds))
            .expect("probe batch over loopback");
        assert_eq!(probe.len(), batch_size.min(n_series));
        assert!(
            probe.iter().all(|p| p.score().is_some()),
            "a live fleet must return scored replies over the wire"
        );

        let mut frames = 0u64;
        let mut points = 0u64;
        let t_run = Instant::now();
        for round in 0..rounds {
            let t = warm_rounds + 1 + round;
            for lo in (0..n_series).step_by(batch_size) {
                let hi = (lo + batch_size).min(n_series);
                points += (hi - lo) as u64;
                client.submit(batch_at(&keys, lo, hi, t)).expect("net submit");
                frames += 1;
            }
        }
        while client.drain().expect("net drain").is_some() {}
        let elapsed_s = t_run.elapsed().as_secs_f64();
        server.shutdown();
        eprintln!(
            "[ingest_bench] loopback: {frames} frames / {points} pts in {} → \
             {:.0} frames/s, {:.0} pts/s",
            fmt_duration(t_run.elapsed()),
            frames as f64 / elapsed_s,
            points as f64 / elapsed_s
        );
        runs.push(Run {
            tier: "loopback",
            series: n_series,
            batch: batch_size,
            frames,
            points,
            elapsed_s,
            frames_per_sec: frames as f64 / elapsed_s,
            points_per_sec: points as f64 / elapsed_s,
        });
    }

    // BENCH_ingest.json — hand-rolled (the workspace is dependency-free)
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"ingest_bench\",");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 == runs.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"tier\": \"{}\", \"series\": {}, \"batch\": {}, \"frames\": {}, \
             \"points\": {}, \"elapsed_s\": {:.4}, \"frames_per_sec\": {:.1}, \
             \"points_per_sec\": {:.1}}}{comma}",
            r.tier,
            r.series,
            r.batch,
            r.frames,
            r.points,
            r.elapsed_s,
            r.frames_per_sec,
            r.points_per_sec
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_ingest.json", &json).expect("writing BENCH_ingest.json");
    eprintln!("[ingest_bench] wrote BENCH_ingest.json");

    let mut rows: Vec<Vec<String>> = Vec::new();
    for r in &runs {
        rows.push(vec![
            r.tier.to_string(),
            r.series.to_string(),
            r.batch.to_string(),
            r.frames.to_string(),
            r.points.to_string(),
            format!("{:.2}", r.elapsed_s),
            format!("{:.0}", r.frames_per_sec),
            format!("{:.0}", r.points_per_sec),
        ]);
    }
    report.table(
        "Ingest throughput",
        &["tier", "series", "batch", "frames", "points", "elapsed (s)", "frames/s", "pts/s"],
        &rows,
    );
    report.para(&format!("host cores: {cores}"));
    report.finish();

    // the greppable CI gate: reached only if every assert above held
    println!("ingest_bench OK");
}
