//! Configured method constructors shared by the experiment binaries,
//! including the paper's λ-tuning procedure (§5.1.4).

use decomp::{
    BatchDecomposer, OnlineDecomposer, OnlineRobustStl, OnlineStl, RobustStl, Stl, Windowed,
};
use oneshotstl::oneshot::OneShotStlConfig;
use oneshotstl::system::Lambdas;
use oneshotstl::OneShotStl;
use tskit::stats::mae;

/// The paper's λ grid (§5.1.4): `λ ∈ {10^0, …, 10^4}`.
pub const LAMBDA_GRID: [f64; 5] = [1.0, 10.0, 100.0, 1000.0, 10000.0];

/// Tunes `λ1 = λ2 = λ` on the training prefix by running OneShotSTL with
/// each grid value and picking the one whose trend is closest (MAE) to the
/// STL trend — the procedure described in §5.1.4.
pub fn tune_lambda(train: &[f64], period: usize) -> f64 {
    let reference = match Stl::new().decompose(train, period) {
        Ok(d) => d,
        Err(_) => return 100.0,
    };
    let split = (4 * period).min(train.len() / 2).max(2 * period + 1);
    if train.len() < split + period {
        return 100.0;
    }
    // ascending grid with a 2% strict-improvement rule: on a stationary
    // training window every λ matches STL about equally well, and the
    // smallest λ is the safe choice (it is the only regime that can track
    // abrupt trend changes later in the stream)
    let mut best = (LAMBDA_GRID[0], f64::INFINITY);
    for &lambda in &LAMBDA_GRID {
        let cfg = OneShotStlConfig {
            lambdas: Lambdas { lambda1: lambda, lambda2: lambda, anchor: 1.0 },
            shift_window: 0,
            ..Default::default()
        };
        let mut m = OneShotStl::new(cfg);
        let d = match m.run_series(train, period, split) {
            Ok(d) => d,
            Err(_) => continue,
        };
        let err = mae(&d.trend[split..], &reference.trend[split..]);
        if err < 0.98 * best.1 {
            best = (lambda, err);
        }
    }
    best.0
}

/// OneShotSTL with tuned λ and the paper's defaults (I = 8, H = 20, n = 5).
pub fn oneshotstl_tuned(lambda: f64) -> OneShotStl {
    OneShotStl::new(OneShotStlConfig {
        lambdas: Lambdas { lambda1: lambda, lambda2: lambda, anchor: 1.0 },
        ..Default::default()
    })
}

/// OneShotSTL with explicit period-misspecification ablation parameters.
pub fn oneshotstl_with(lambda: f64, iters: usize, shift_window: usize) -> OneShotStl {
    OneShotStl::new(OneShotStlConfig {
        lambdas: Lambdas { lambda1: lambda, lambda2: lambda, anchor: 1.0 },
        iters,
        shift_window,
        ..Default::default()
    })
}

/// The online STD baselines of Table 2 / Fig. 7, boxed for uniform driving.
pub fn online_std_baselines() -> Vec<Box<dyn OnlineDecomposer>> {
    vec![
        Box::new(Windowed::new(Stl::new(), "Window-STL", 4)),
        Box::new(OnlineStl::new()),
        Box::new(Windowed::new(RobustStl::new(), "Window-RobustSTL", 4)),
        Box::new(OnlineRobustStl::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn lambda_tuning_returns_grid_value() {
        let t = 24;
        let mut rng = StdRng::seed_from_u64(1);
        let y: Vec<f64> = (0..8 * t)
            .map(|i| {
                (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()
                    + 0.05 * rng.gen_range(-1.0..1.0)
            })
            .collect();
        let lambda = tune_lambda(&y, t);
        assert!(LAMBDA_GRID.contains(&lambda), "tuned λ = {lambda}");
    }

    #[test]
    fn baseline_set_has_four_methods() {
        let methods = online_std_baselines();
        assert_eq!(methods.len(), 4);
        let names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
        assert!(names.contains(&"OnlineSTL"));
        assert!(names.contains(&"Window-RobustSTL"));
    }
}
