//! Markdown/CSV experiment reports under `target/experiments/`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;
use tskit::io::{markdown_table, write_csv_rows};

/// Formats a float with three decimals (the paper's table convention).
pub fn fmt3(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "-".into()
    }
}

/// Human-readable duration.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

/// A named experiment report that accumulates sections and tables.
pub struct Experiment {
    name: String,
    body: String,
}

impl Experiment {
    /// Starts a report for `name` (e.g. `"table2"`).
    pub fn new(name: &str, title: &str) -> Self {
        let mut body = String::new();
        let _ = writeln!(body, "# {title}\n");
        Experiment { name: name.to_string(), body }
    }

    /// Output directory (`target/experiments`).
    pub fn dir() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments")
    }

    /// Appends a paragraph.
    pub fn para(&mut self, text: &str) {
        let _ = writeln!(self.body, "{text}\n");
    }

    /// Appends a markdown table (also printed to stdout).
    pub fn table(&mut self, caption: &str, headers: &[&str], rows: &[Vec<String>]) {
        let md = markdown_table(headers, rows);
        let _ = writeln!(self.body, "## {caption}\n\n{md}");
        println!("\n== {caption} ==\n{md}");
    }

    /// Writes a companion CSV next to the report.
    pub fn csv(&self, suffix: &str, headers: &[&str], rows: &[Vec<String>]) {
        let path = Self::dir().join(format!("{}_{suffix}.csv", self.name));
        if let Err(e) = write_csv_rows(&path, headers, rows) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }

    /// Flushes the markdown report to disk and returns its path.
    pub fn finish(self) -> PathBuf {
        let path = Self::dir().join(format!("{}.md", self.name));
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&path, &self.body) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("\nreport written to {}", path.display());
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt3(f64::NAN), "-");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.0µs");
        assert_eq!(fmt_duration(Duration::from_millis(300)), "300.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.0s");
        assert_eq!(fmt_duration(Duration::from_secs(300)), "5.0min");
    }

    #[test]
    fn experiment_report_roundtrip() {
        let mut e = Experiment::new("unit_test_report", "Unit test");
        e.para("hello");
        e.table("numbers", &["a"], &[vec!["1".into()]]);
        let path = e.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("hello"));
        assert!(text.contains("| a |"));
        std::fs::remove_file(path).ok();
    }
}
