//! Reference numbers from the paper, printed next to our measurements so
//! EXPERIMENTS.md can record paper-vs-measured for every artifact.

/// Table 2 (paper): decomposition MAE `(trend, seasonal, residual)` per
/// `(dataset, method)`.
pub const TABLE2_PAPER: &[(&str, &str, [f64; 3])] = &[
    ("Syn1", "STL", [0.134, 0.015, 0.144]),
    ("Syn1", "RobustSTL", [0.004, 0.013, 0.016]),
    ("Syn1", "Window-STL", [0.134, 0.092, 0.174]),
    ("Syn1", "OnlineSTL", [0.104, 0.023, 0.093]),
    ("Syn1", "Window-RobustSTL", [0.045, 0.018, 0.046]),
    ("Syn1", "OnlineRobustSTL", [0.131, 0.033, 0.123]),
    ("Syn1", "OneShotSTL", [0.007, 0.014, 0.019]),
    ("Syn2", "STL", [0.084, 0.433, 0.505]),
    ("Syn2", "RobustSTL", [0.004, 0.004, 0.004]),
    ("Syn2", "Window-STL", [0.084, 0.313, 0.313]),
    ("Syn2", "OnlineSTL", [0.225, 0.374, 0.571]),
    ("Syn2", "Window-RobustSTL", [0.032, 0.031, 0.006]),
    ("Syn2", "OnlineRobustSTL", [0.037, 0.031, 0.013]),
    ("Syn2", "OneShotSTL", [0.004, 0.013, 0.013]),
];

/// Table 3 (paper): average VUS-ROC over the 17 TSB-UAD datasets.
pub const TABLE3_PAPER_AVG: &[(&str, f64)] = &[
    ("LSTM", 0.624),
    ("USAD", 0.698),
    ("TranAD", 0.664),
    ("NormA", 0.713),
    ("SAND", 0.669),
    ("STOMPI", 0.634),
    ("DAMP", 0.652),
    ("NSigma", 0.695),
    ("OnlineSTL", 0.693),
    ("OneShotSTL", 0.713),
];

/// Table 4 (paper): KDD21 accuracy.
pub const TABLE4_PAPER: &[(&str, f64)] = &[
    ("LSTM", 0.460),
    ("USAD", 0.168),
    ("TranAD", 0.196),
    ("NormA", 0.500),
    ("STOMPI", 0.360),
    ("SAND", 0.388),
    ("DAMP", 0.512),
    ("NSigma", 0.132),
    ("OnlineSTL", 0.268),
    ("OneShotSTL", 0.288),
    ("NSigma+DAMP", 0.324),
    ("OnlineSTL+DAMP", 0.408),
    ("OneShotSTL+DAMP", 0.508),
];

/// Table 5 (paper): average MAE over all datasets/horizons for the methods
/// we reproduce, plus the transformer references we do not re-implement.
pub const TABLE5_PAPER_AVG: &[(&str, f64)] = &[
    ("FiLM*", 0.308),
    ("FEDformer*", 0.368),
    ("Informer*", 0.702),
    ("NBEATS", 0.373),
    ("DeepAR", 0.677),
    ("AutoARIMA", 0.647),
    ("OnlineSTL", 0.707),
    ("OneShotSTL", 0.337),
];

/// Figure 7 (paper): OneShotSTL holds ~20µs/point for every T; OnlineSTL
/// crosses it around T ≈ 800 and reaches ~450µs at T = 12800; windowed
/// batch methods are ≥ 2 orders of magnitude slower.
pub const FIG7_PAPER_NOTE: &str = "paper: OneShotSTL flat ~20µs/point for all T; \
OnlineSTL linear in T (~450µs at T=12800, crossover vs OneShotSTL at T≈800); \
Window-STL / Window-RobustSTL / OnlineRobustSTL ≥ 100× slower than the online methods";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_complete() {
        assert_eq!(TABLE2_PAPER.len(), 14);
        assert_eq!(TABLE3_PAPER_AVG.len(), 10);
        assert_eq!(TABLE4_PAPER.len(), 13);
        assert!(TABLE5_PAPER_AVG.len() >= 8);
    }

    #[test]
    fn paper_claims_oneshot_best_online_on_syn() {
        // sanity on the hard-coded reference data itself
        let syn1_online: Vec<&(&str, &str, [f64; 3])> = TABLE2_PAPER
            .iter()
            .filter(|(d, m, _)| *d == "Syn1" && *m != "STL" && *m != "RobustSTL")
            .collect();
        let best =
            syn1_online.iter().min_by(|a, b| a.2[0].partial_cmp(&b.2[0]).unwrap()).unwrap();
        assert_eq!(best.1, "OneShotSTL");
    }
}
