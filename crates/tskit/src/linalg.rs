//! Symmetric banded linear algebra.
//!
//! The linear systems behind JointSTL (Eq. 6/8 of the paper) and ℓ1 trend
//! filtering are symmetric positive definite with small or moderate
//! bandwidth. This module provides a compact lower-band storage format, an
//! LDLᵀ (symmetric Doolittle) factorization that preserves the band, and the
//! associated triangular solves — all `O(n·w²)` for half-bandwidth `w`.

// index recurrences here mirror the published algorithms; iterator
// rewrites obscure the maths
#![allow(clippy::needless_range_loop)]
use crate::error::{Result, TsError};

/// Symmetric matrix stored as its lower band.
///
/// `band(i, d)` holds `A[i][i-d]` for `d = 0..=w`, where `w` is the
/// half-bandwidth. Entries with `d > i` are kept as zero padding so that
/// rows have uniform stride.
#[derive(Debug, Clone, PartialEq)]
pub struct SymBanded {
    n: usize,
    w: usize,
    /// Row-major: `data[i * (w + 1) + d] = A[i][i - d]`.
    data: Vec<f64>,
}

impl SymBanded {
    /// Creates an `n×n` zero matrix with half-bandwidth `w`.
    pub fn zeros(n: usize, w: usize) -> Self {
        SymBanded { n, w, data: vec![0.0; n * (w + 1)] }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Half-bandwidth (number of sub-diagonals stored).
    pub fn bandwidth(&self) -> usize {
        self.w
    }

    #[inline]
    fn idx(&self, i: usize, d: usize) -> usize {
        i * (self.w + 1) + d
    }

    /// Returns `A[i][j]`; zero outside the band.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
        let d = hi - lo;
        if d > self.w {
            0.0
        } else {
            self.data[self.idx(hi, d)]
        }
    }

    /// Sets `A[i][j]` (and by symmetry `A[j][i]`).
    ///
    /// # Panics
    /// Panics if `|i - j|` exceeds the bandwidth.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
        let d = hi - lo;
        assert!(d <= self.w, "entry ({i},{j}) outside band w={}", self.w);
        let k = self.idx(hi, d);
        self.data[k] = v;
    }

    /// Adds `v` to `A[i][j]` (and by symmetry `A[j][i]`).
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
        let d = hi - lo;
        assert!(d <= self.w, "entry ({i},{j}) outside band w={}", self.w);
        let k = self.idx(hi, d);
        self.data[k] += v;
    }

    /// Adds `ridge` to the whole diagonal (numerical regularization).
    pub fn add_ridge(&mut self, ridge: f64) {
        for i in 0..self.n {
            let k = self.idx(i, 0);
            self.data[k] += ridge;
        }
    }

    /// Matrix-vector product `A x` (uses symmetry, respects the band).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "matvec: dimension mismatch");
        let mut y = vec![0.0; self.n];
        for i in 0..self.n {
            let lo = i.saturating_sub(self.w);
            for j in lo..=i {
                let a = self.data[self.idx(i, i - j)];
                y[i] += a * x[j];
                if i != j {
                    y[j] += a * x[i];
                }
            }
        }
        y
    }

    /// Converts to a dense row-major matrix (tests / debugging only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        (0..self.n).map(|i| (0..self.n).map(|j| self.get(i, j)).collect()).collect()
    }

    /// LDLᵀ factorization (symmetric Doolittle). Returns the factors; the
    /// unit lower-triangular `L` shares this band layout (its stored
    /// diagonal entries are all 1).
    ///
    /// Fails with [`TsError::Singular`] if a pivot falls below `1e-300`
    /// in absolute value.
    pub fn ldlt(&self) -> Result<BandedLdlt> {
        let n = self.n;
        let w = self.w;
        let mut l = SymBanded::zeros(n, w);
        let mut d = vec![0.0; n];
        for k in 0..n {
            let lo = k.saturating_sub(w);
            let mut dk = self.data[self.idx(k, 0)];
            for i in lo..k {
                let lki = l.data[l.idx(k, k - i)];
                dk -= d[i] * lki * lki;
            }
            if dk.abs() < 1e-300 {
                return Err(TsError::Singular { pivot: k });
            }
            d[k] = dk;
            let li = l.idx(k, 0);
            l.data[li] = 1.0;
            let hi = (k + w).min(n - 1);
            for j in k + 1..=hi {
                let jlo = j.saturating_sub(w);
                let mut s = self.get(j, k);
                for i in jlo.max(lo)..k {
                    s -= l.data[l.idx(j, j - i)] * d[i] * l.data[l.idx(k, k - i)];
                }
                let idx = l.idx(j, j - k);
                l.data[idx] = s / dk;
            }
        }
        Ok(BandedLdlt { l, d })
    }

    /// Solves `A x = b` via LDLᵀ.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        Ok(self.ldlt()?.solve(b))
    }
}

/// The result of a banded LDLᵀ factorization: `A = L D Lᵀ`.
#[derive(Debug, Clone)]
pub struct BandedLdlt {
    /// Unit lower-triangular factor, stored in band form.
    pub l: SymBanded,
    /// Diagonal of `D`.
    pub d: Vec<f64>,
}

impl BandedLdlt {
    /// Forward substitution `L z = b`.
    pub fn forward(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.n;
        let w = self.l.w;
        assert_eq!(b.len(), n, "forward: dimension mismatch");
        let mut z = b.to_vec();
        for k in 0..n {
            let lo = k.saturating_sub(w);
            let mut s = z[k];
            for i in lo..k {
                s -= self.l.data[self.l.idx(k, k - i)] * z[i];
            }
            z[k] = s;
        }
        z
    }

    /// Backward substitution `Lᵀ x = y`.
    pub fn backward(&self, y: &[f64]) -> Vec<f64> {
        let n = self.l.n;
        let w = self.l.w;
        assert_eq!(y.len(), n, "backward: dimension mismatch");
        let mut x = y.to_vec();
        for k in (0..n).rev() {
            let hi = (k + w).min(n - 1);
            let mut s = x[k];
            for j in k + 1..=hi {
                s -= self.l.data[self.l.idx(j, j - k)] * x[j];
            }
            x[k] = s;
        }
        x
    }

    /// Full solve `A x = b` (forward, diagonal scale, backward).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut z = self.forward(b);
        for (zi, di) in z.iter_mut().zip(&self.d) {
            *zi /= di;
        }
        self.backward(&z)
    }
}

/// Solves a tridiagonal system with the Thomas algorithm.
///
/// `sub`, `diag`, `sup` are the sub-, main and super-diagonals
/// (`sub.len() == sup.len() == diag.len() - 1`).
pub fn solve_tridiagonal(
    sub: &[f64],
    diag: &[f64],
    sup: &[f64],
    b: &[f64],
) -> Result<Vec<f64>> {
    let n = diag.len();
    assert_eq!(b.len(), n, "tridiagonal: rhs length mismatch");
    assert_eq!(sub.len() + 1, n, "tridiagonal: sub-diagonal length mismatch");
    assert_eq!(sup.len() + 1, n, "tridiagonal: super-diagonal length mismatch");
    let mut c = vec![0.0; n];
    let mut d = vec![0.0; n];
    if diag[0].abs() < 1e-300 {
        return Err(TsError::Singular { pivot: 0 });
    }
    c[0] = sup.first().copied().unwrap_or(0.0) / diag[0];
    d[0] = b[0] / diag[0];
    for i in 1..n {
        let m = diag[i] - sub[i - 1] * c[i - 1];
        if m.abs() < 1e-300 {
            return Err(TsError::Singular { pivot: i });
        }
        c[i] = if i < n - 1 { sup[i] / m } else { 0.0 };
        d[i] = (b[i] - sub[i - 1] * d[i - 1]) / m;
    }
    let mut x = vec![0.0; n];
    x[n - 1] = d[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = d[i] - c[i] * x[i + 1];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_banded(n: usize, w: usize, seed: u64) -> SymBanded {
        // Build A = Bᵀ B + I from a random banded B: SPD by construction.
        let mut state = seed;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = SymBanded::zeros(n, w);
        // random banded symmetric part
        for i in 0..n {
            for d in 0..=w.min(i) {
                a.set(i, i - d, rnd());
            }
        }
        // diagonally dominate to guarantee SPD
        for i in 0..n {
            let mut rowsum = 0.0;
            for j in 0..n {
                if j != i {
                    rowsum += a.get(i, j).abs();
                }
            }
            a.set(i, i, rowsum + 1.0);
        }
        a
    }

    #[test]
    fn get_set_symmetry_and_band() {
        let mut a = SymBanded::zeros(5, 2);
        a.set(3, 1, 7.0);
        assert_eq!(a.get(3, 1), 7.0);
        assert_eq!(a.get(1, 3), 7.0);
        assert_eq!(a.get(0, 4), 0.0); // outside band reads as zero
        a.add(3, 1, 1.0);
        assert_eq!(a.get(1, 3), 8.0);
    }

    #[test]
    #[should_panic(expected = "outside band")]
    fn set_outside_band_panics() {
        let mut a = SymBanded::zeros(5, 1);
        a.set(0, 4, 1.0);
    }

    #[test]
    fn ldlt_reconstructs_matrix() {
        let a = spd_banded(12, 3, 42);
        let f = a.ldlt().unwrap();
        // Check L D Lᵀ == A entry-wise (L's stored diagonal is 1).
        let n = a.n();
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for k in 0..=i.min(j) {
                    v += f.l.get(i, k) * f.d[k] * f.l.get(j, k);
                }
                assert!(
                    (v - a.get(i, j)).abs() < 1e-9,
                    "mismatch at ({i},{j}): {v} vs {}",
                    a.get(i, j)
                );
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        for (n, w) in [(1usize, 0usize), (4, 1), (10, 2), (25, 4), (40, 7)] {
            let a = spd_banded(n, w, 7 + n as u64);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 1.0).collect();
            let b = a.matvec(&x_true);
            let x = a.solve(&b).unwrap();
            for i in 0..n {
                assert!((x[i] - x_true[i]).abs() < 1e-8, "n={n} w={w} i={i}");
            }
        }
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = SymBanded::zeros(3, 1);
        assert!(matches!(a.ldlt(), Err(TsError::Singular { pivot: 0 })));
    }

    #[test]
    fn tridiagonal_matches_banded_solver() {
        let n = 30;
        let sub: Vec<f64> = (0..n - 1).map(|i| -0.5 - 0.01 * i as f64).collect();
        let diag: Vec<f64> = (0..n).map(|i| 3.0 + 0.1 * i as f64).collect();
        let sup = sub.clone(); // symmetric
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let x1 = solve_tridiagonal(&sub, &diag, &sup, &b).unwrap();
        let mut a = SymBanded::zeros(n, 1);
        for i in 0..n {
            a.set(i, i, diag[i]);
            if i + 1 < n {
                a.set(i + 1, i, sub[i]);
            }
        }
        let x2 = a.solve(&b).unwrap();
        for i in 0..n {
            assert!((x1[i] - x2[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn matvec_matches_dense() {
        let a = spd_banded(9, 2, 3);
        let x: Vec<f64> = (0..9).map(|i| i as f64 - 4.0).collect();
        let y = a.matvec(&x);
        let dense = a.to_dense();
        for i in 0..9 {
            let yi: f64 = (0..9).map(|j| dense[i][j] * x[j]).sum();
            assert!((y[i] - yi).abs() < 1e-10);
        }
    }
}
