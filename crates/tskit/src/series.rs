//! Containers for decomposition results and labelled benchmark series.

/// A full batch seasonal-trend decomposition:
/// `y[i] == trend[i] + seasonal[i] + residual[i]` for every `i`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Decomposition {
    /// Trend component τ.
    pub trend: Vec<f64>,
    /// Seasonal component s.
    pub seasonal: Vec<f64>,
    /// Remainder r.
    pub residual: Vec<f64>,
}

impl Decomposition {
    /// Creates a decomposition filled with zeros of length `n`.
    pub fn zeros(n: usize) -> Self {
        Decomposition { trend: vec![0.0; n], seasonal: vec![0.0; n], residual: vec![0.0; n] }
    }

    /// Number of time points.
    pub fn len(&self) -> usize {
        self.trend.len()
    }

    /// True when the decomposition holds no points.
    pub fn is_empty(&self) -> bool {
        self.trend.is_empty()
    }

    /// Reconstructs the original series `trend + seasonal + residual`.
    pub fn reconstruct(&self) -> Vec<f64> {
        self.trend
            .iter()
            .zip(&self.seasonal)
            .zip(&self.residual)
            .map(|((t, s), r)| t + s + r)
            .collect()
    }

    /// The decomposition of a single time point `i`.
    pub fn point(&self, i: usize) -> DecompPoint {
        DecompPoint {
            trend: self.trend[i],
            seasonal: self.seasonal[i],
            residual: self.residual[i],
        }
    }

    /// Appends a single decomposed point.
    pub fn push(&mut self, p: DecompPoint) {
        self.trend.push(p.trend);
        self.seasonal.push(p.seasonal);
        self.residual.push(p.residual);
    }

    /// Checks the additive identity `y == τ + s + r` within `tol` and returns
    /// the first violating index, if any.
    pub fn check_additive(&self, y: &[f64], tol: f64) -> Option<usize> {
        y.iter().enumerate().position(|(i, &v)| {
            (self.trend[i] + self.seasonal[i] + self.residual[i] - v).abs() > tol
        })
    }
}

/// The decomposition of one streaming data point, as produced by the online
/// algorithms (`y_t = trend + seasonal + residual`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DecompPoint {
    /// Trend τ_t.
    pub trend: f64,
    /// Seasonal s_t.
    pub seasonal: f64,
    /// Residual r_t.
    pub residual: f64,
}

impl DecompPoint {
    /// Reconstructs `y_t`.
    pub fn value(&self) -> f64 {
        self.trend + self.seasonal + self.residual
    }
}

/// A univariate series with point-wise binary anomaly labels and a
/// train/test split, mirroring how the TSB-UAD benchmark presents data.
#[derive(Debug, Clone)]
pub struct LabeledSeries {
    /// Identifier used in experiment reports.
    pub name: String,
    /// Observed values, train followed by test.
    pub values: Vec<f64>,
    /// `true` marks an anomalous point. Same length as `values`.
    pub labels: Vec<bool>,
    /// Index of the first test point; `values[..split]` is the training /
    /// initialization prefix that online methods may consume first.
    pub split: usize,
    /// Dominant seasonal period if known (generators always know it).
    pub period: Option<usize>,
}

impl LabeledSeries {
    /// Training prefix (used by online methods for initialization).
    pub fn train(&self) -> &[f64] {
        &self.values[..self.split]
    }

    /// Test suffix to be scored.
    pub fn test(&self) -> &[f64] {
        &self.values[self.split..]
    }

    /// Labels aligned with [`Self::test`].
    pub fn test_labels(&self) -> &[bool] {
        &self.labels[self.split..]
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of anomalous points in the test region.
    pub fn test_anomaly_count(&self) -> usize {
        self.test_labels().iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruct_roundtrips() {
        let d = Decomposition {
            trend: vec![1.0, 2.0],
            seasonal: vec![0.5, -0.5],
            residual: vec![0.1, 0.2],
        };
        let y = d.reconstruct();
        assert!((y[0] - 1.6).abs() < 1e-12);
        assert!((y[1] - 1.7).abs() < 1e-12);
        assert_eq!(d.check_additive(&y, 1e-12), None);
        assert_eq!(d.check_additive(&[0.0, 1.7], 1e-12), Some(0));
    }

    #[test]
    fn push_and_point_agree() {
        let mut d = Decomposition::zeros(0);
        let p = DecompPoint { trend: 3.0, seasonal: 1.0, residual: -0.5 };
        d.push(p);
        assert_eq!(d.len(), 1);
        assert_eq!(d.point(0), p);
        assert!((p.value() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn labeled_series_split_views() {
        let s = LabeledSeries {
            name: "t".into(),
            values: vec![1.0, 2.0, 3.0, 4.0],
            labels: vec![false, false, true, false],
            split: 2,
            period: Some(2),
        };
        assert_eq!(s.train(), &[1.0, 2.0]);
        assert_eq!(s.test(), &[3.0, 4.0]);
        assert_eq!(s.test_labels(), &[true, false]);
        assert_eq!(s.test_anomaly_count(), 1);
        assert_eq!(s.len(), 4);
    }
}
