//! Seasonal-period detection.
//!
//! All STD and matrix-profile methods in the paper take the season length
//! `T` as input; the paper estimates it with TSB-UAD's ACF-based
//! `find_length` heuristic (§5.1.4). [`find_length`] is a faithful port;
//! [`detect_period`] generalizes it for periods beyond 300 points.

use crate::stats::acf;

/// TSB-UAD's `find_length` (slidingWindows.py): ACF up to lag 400, first 3
/// lags skipped, the local maximum with the highest ACF wins; falls back to
/// `125` when the winner is outside `(3, 300)` or no local maximum exists.
pub fn find_length(data: &[f64]) -> usize {
    const BASE: usize = 3;
    const NLAGS: usize = 400;
    const DEFAULT: usize = 125;
    let data = &data[..data.len().min(20_000)];
    if data.len() < 2 * BASE + 2 {
        return DEFAULT;
    }
    let auto = acf(data, NLAGS.min(data.len().saturating_sub(1)));
    if auto.len() <= BASE + 1 {
        return DEFAULT;
    }
    let tail = &auto[BASE..];
    let mut best: Option<(usize, f64)> = None;
    for i in 1..tail.len().saturating_sub(1) {
        if tail[i] > tail[i - 1] && tail[i] > tail[i + 1] {
            match best {
                Some((_, bv)) if tail[i] <= bv => {}
                _ => best = Some((i, tail[i])),
            }
        }
    }
    match best {
        Some((i, _)) => {
            let lag = i + BASE;
            if !(3..=300).contains(&lag) {
                DEFAULT
            } else {
                lag
            }
        }
        None => DEFAULT,
    }
}

/// Generalized ACF period detector for arbitrary period ranges: returns the
/// lag in `[min_period, max_period]` whose ACF is a local maximum with the
/// highest value, or `None` when the signal shows no periodic structure
/// (best local-max ACF below `min_acf`).
pub fn detect_period(
    data: &[f64],
    min_period: usize,
    max_period: usize,
    min_acf: f64,
) -> Option<usize> {
    if data.len() < 2 * min_period + 2 || min_period < 2 || max_period <= min_period {
        return None;
    }
    let max_lag = max_period.min(data.len() / 2) + 1;
    let auto = acf(data, max_lag);
    let mut best: Option<(usize, f64)> = None;
    for lag in min_period.max(2)..=max_lag.saturating_sub(1).min(max_period) {
        if auto[lag] > auto[lag - 1] && auto[lag] >= auto[lag + 1] && auto[lag] >= min_acf {
            match best {
                Some((_, bv)) if auto[lag] <= bv => {}
                _ => best = Some((lag, auto[lag])),
            }
        }
    }
    best.map(|(lag, _)| lag)
}

/// Like [`detect_period`] but falls back to `default` when detection fails.
pub fn detect_period_or(
    data: &[f64],
    min_period: usize,
    max_period: usize,
    default: usize,
) -> usize {
    detect_period(data, min_period, max_period, 0.1).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift-based white noise: unlike a Weyl sequence, it has no
    /// spurious short-lag autocorrelation.
    fn white(state: &mut u64) -> f64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    fn periodic(n: usize, t: usize, noise: f64) -> Vec<f64> {
        let mut st = 0x9E3779B97F4A7C15u64;
        (0..n)
            .map(|i| {
                let phase = 2.0 * std::f64::consts::PI * i as f64 / t as f64;
                phase.sin() + 0.4 * (2.0 * phase).cos() + 2.0 * noise * white(&mut st)
            })
            .collect()
    }

    #[test]
    fn find_length_detects_small_period() {
        for t in [24usize, 50, 120, 200] {
            let x = periodic(3000, t, 0.1);
            let est = find_length(&x);
            assert!((est as i64 - t as i64).abs() <= 2, "period {t}: estimated {est}");
        }
    }

    #[test]
    fn find_length_default_on_flat_series() {
        let x = vec![1.0; 1000];
        assert_eq!(find_length(&x), 125);
        assert_eq!(find_length(&[1.0, 2.0]), 125);
    }

    #[test]
    fn detect_period_handles_large_periods() {
        let t = 500;
        let x = periodic(4000, t, 0.05);
        let est = detect_period(&x, 50, 1000, 0.1).expect("period should be found");
        assert!((est as i64 - t as i64).abs() <= 5, "estimated {est}");
    }

    #[test]
    fn detect_period_none_on_noise() {
        let mut st = 0xDEADBEEFu64;
        let x: Vec<f64> = (0..2000).map(|_| white(&mut st)).collect();
        // pure white noise: no strong periodic local max
        assert_eq!(detect_period(&x, 10, 500, 0.5), None);
        assert_eq!(detect_period_or(&x, 10, 500, 99), 99);
    }

    #[test]
    fn detect_period_rejects_degenerate_args() {
        let x = periodic(100, 10, 0.0);
        assert_eq!(detect_period(&x, 1, 10, 0.1), None); // min_period < 2
        assert_eq!(detect_period(&x, 10, 10, 0.1), None); // empty range
    }
}
