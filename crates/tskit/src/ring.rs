//! Fixed-capacity ring buffer used by the online decomposition algorithms.

/// A fixed-capacity circular buffer over `f64` values.
///
/// Once full, pushing a new value overwrites the oldest. Indexing is oldest
/// first: `get(0)` is the oldest retained value, `back(0)` the newest.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    data: Vec<f64>,
    head: usize,
    len: usize,
}

impl RingBuffer {
    /// Creates an empty buffer with capacity `cap` (> 0).
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "RingBuffer capacity must be positive");
        RingBuffer { data: vec![0.0; cap], head: 0, len: 0 }
    }

    /// Creates a buffer pre-filled with the last `cap` values of `init`
    /// (or all of them when `init` is shorter than `cap`).
    pub fn from_slice(cap: usize, init: &[f64]) -> Self {
        let mut rb = RingBuffer::new(cap);
        let start = init.len().saturating_sub(cap);
        for &v in &init[start..] {
            rb.push(v);
        }
        rb
    }

    /// Capacity of the buffer.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Number of stored values (≤ capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    /// Pushes `v`, overwriting the oldest value when full. Returns the
    /// evicted value, if any.
    pub fn push(&mut self, v: f64) -> Option<f64> {
        let cap = self.capacity();
        if self.len < cap {
            let idx = (self.head + self.len) % cap;
            self.data[idx] = v;
            self.len += 1;
            None
        } else {
            let evicted = self.data[self.head];
            self.data[self.head] = v;
            self.head = (self.head + 1) % cap;
            Some(evicted)
        }
    }

    /// Value at logical index `i` (0 = oldest).
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.len, "RingBuffer index {i} out of range (len {})", self.len);
        self.data[(self.head + i) % self.capacity()]
    }

    /// Value at reverse index `i` (0 = newest).
    pub fn back(&self, i: usize) -> f64 {
        assert!(i < self.len, "RingBuffer back index {i} out of range (len {})", self.len);
        self.get(self.len - 1 - i)
    }

    /// Overwrites the value at logical index `i` (0 = oldest).
    pub fn set(&mut self, i: usize, v: f64) {
        assert!(i < self.len, "RingBuffer index {i} out of range (len {})", self.len);
        let cap = self.capacity();
        self.data[(self.head + i) % cap] = v;
    }

    /// Copies the contents oldest-to-newest into a vector.
    pub fn to_vec(&self) -> Vec<f64> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Iterates oldest-to-newest.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Extracts a plain-data snapshot for serialization (see
    /// `fleet::codec`). The contents are stored oldest-first, so the
    /// physical `head` position is not part of the state.
    pub fn to_state(&self) -> RingBufferState {
        RingBufferState { capacity: self.capacity(), values: self.to_vec() }
    }

    /// Rebuilds a buffer from [`RingBuffer::to_state`] output. The restored
    /// buffer is behaviorally identical to the snapshotted one: same
    /// capacity, same logical contents, bit-identical values.
    pub fn from_state(state: RingBufferState) -> crate::error::Result<Self> {
        if state.capacity == 0 {
            return Err(crate::error::TsError::InvalidParam {
                name: "RingBufferState.capacity",
                msg: "capacity must be positive".into(),
            });
        }
        if state.values.len() > state.capacity {
            return Err(crate::error::TsError::InvalidParam {
                name: "RingBufferState.values",
                msg: format!(
                    "{} values exceed capacity {}",
                    state.values.len(),
                    state.capacity
                ),
            });
        }
        Ok(RingBuffer::from_slice(state.capacity, &state.values))
    }
}

/// Plain-data snapshot of a [`RingBuffer`] (logical contents oldest-first).
#[derive(Debug, Clone, PartialEq)]
pub struct RingBufferState {
    /// Buffer capacity.
    pub capacity: usize,
    /// Stored values, oldest first (`len() <= capacity`).
    pub values: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps() {
        let mut rb = RingBuffer::new(3);
        assert!(rb.is_empty());
        assert_eq!(rb.push(1.0), None);
        assert_eq!(rb.push(2.0), None);
        assert_eq!(rb.push(3.0), None);
        assert!(rb.is_full());
        assert_eq!(rb.push(4.0), Some(1.0));
        assert_eq!(rb.to_vec(), vec![2.0, 3.0, 4.0]);
        assert_eq!(rb.get(0), 2.0);
        assert_eq!(rb.back(0), 4.0);
        assert_eq!(rb.back(2), 2.0);
    }

    #[test]
    fn set_updates_in_place() {
        let mut rb = RingBuffer::from_slice(3, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(rb.to_vec(), vec![2.0, 3.0, 4.0]);
        rb.set(1, 9.0);
        assert_eq!(rb.to_vec(), vec![2.0, 9.0, 4.0]);
    }

    #[test]
    fn from_slice_shorter_than_cap() {
        let rb = RingBuffer::from_slice(5, &[1.0, 2.0]);
        assert_eq!(rb.len(), 2);
        assert_eq!(rb.to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn iter_matches_to_vec() {
        let mut rb = RingBuffer::new(4);
        for i in 0..9 {
            rb.push(i as f64);
        }
        let v: Vec<f64> = rb.iter().collect();
        assert_eq!(v, rb.to_vec());
        assert_eq!(v, vec![5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = RingBuffer::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let rb = RingBuffer::from_slice(3, &[1.0]);
        let _ = rb.get(1);
    }
}
