//! Minimal CSV / markdown output helpers for the experiment harness.

use crate::error::Result;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Writes a CSV file from named columns of floats. Columns may have
/// different lengths; missing cells are left empty.
pub fn write_csv_columns(path: &Path, headers: &[&str], columns: &[Vec<f64>]) -> Result<()> {
    assert_eq!(headers.len(), columns.len(), "write_csv_columns: header/column count mismatch");
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut out = std::io::BufWriter::new(fs::File::create(path)?);
    writeln!(out, "{}", headers.join(","))?;
    let rows = columns.iter().map(Vec::len).max().unwrap_or(0);
    for r in 0..rows {
        let line: Vec<String> = columns
            .iter()
            .map(|c| c.get(r).map(|v| format!("{v}")).unwrap_or_default())
            .collect();
        writeln!(out, "{}", line.join(","))?;
    }
    out.flush()?;
    Ok(())
}

/// Writes a CSV of string rows.
pub fn write_csv_rows(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut out = std::io::BufWriter::new(fs::File::create(path)?);
    writeln!(out, "{}", headers.join(","))?;
    for row in rows {
        writeln!(out, "{}", row.join(","))?;
    }
    out.flush()?;
    Ok(())
}

/// Reads a simple CSV of floats (header row skipped) into columns.
pub fn read_csv_columns(path: &Path) -> Result<(Vec<String>, Vec<Vec<f64>>)> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    let headers: Vec<String> = match lines.next() {
        Some(h) => h.split(',').map(|s| s.trim().to_string()).collect(),
        None => return Ok((Vec::new(), Vec::new())),
    };
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); headers.len()];
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        for (i, cell) in line.split(',').enumerate() {
            if i < columns.len() {
                if let Ok(v) = cell.trim().parse::<f64>() {
                    columns[i].push(v);
                }
            }
        }
    }
    Ok((headers, columns))
}

/// Renders a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = String::new();
    s.push_str("| ");
    s.push_str(&headers.join(" | "));
    s.push_str(" |\n|");
    for _ in headers {
        s.push_str("---|");
    }
    s.push('\n');
    for row in rows {
        s.push_str("| ");
        s.push_str(&row.join(" | "));
        s.push_str(" |\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tskit-io-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn csv_roundtrip() {
        let dir = tmpdir();
        let path = dir.join("cols.csv");
        write_csv_columns(&path, &["a", "b"], &[vec![1.0, 2.0, 3.0], vec![4.5, 5.5, 6.5]])
            .unwrap();
        let (headers, cols) = read_csv_columns(&path).unwrap();
        assert_eq!(headers, vec!["a", "b"]);
        assert_eq!(cols[0], vec![1.0, 2.0, 3.0]);
        assert_eq!(cols[1], vec![4.5, 5.5, 6.5]);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn ragged_columns_pad_with_empty() {
        let dir = tmpdir();
        let path = dir.join("ragged.csv");
        write_csv_columns(&path, &["x", "y"], &[vec![1.0], vec![2.0, 3.0]]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[2], ",3");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn markdown_table_shape() {
        let md = markdown_table(
            &["method", "mae"],
            &[vec!["stl".into(), "0.1".into()], vec!["oneshot".into(), "0.05".into()]],
        );
        assert!(md.contains("| method | mae |"));
        assert!(md.contains("| oneshot | 0.05 |"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn rows_writer_and_empty_read() {
        let dir = tmpdir();
        let path = dir.join("rows.csv");
        write_csv_rows(&path, &["k", "v"], &[vec!["a".into(), "1".into()]]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("k,v\n"));
        fs::remove_dir_all(dir).ok();
    }
}
