//! Moving averages and simple linear filters (STL building blocks).

/// Centered moving average of window `w`. Edges use a shrunken symmetric
/// window so the output has the same length as the input.
pub fn centered_moving_average(x: &[f64], w: usize) -> Vec<f64> {
    let n = x.len();
    if n == 0 || w <= 1 {
        return x.to_vec();
    }
    let half = w / 2;
    let mut prefix = vec![0.0; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + x[i];
    }
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half).min(n - 1);
            (prefix[hi + 1] - prefix[lo]) / (hi - lo + 1) as f64
        })
        .collect()
}

/// Trailing (causal) moving average of window `w`; the first points average
/// over the available prefix.
pub fn trailing_moving_average(x: &[f64], w: usize) -> Vec<f64> {
    let n = x.len();
    if n == 0 || w <= 1 {
        return x.to_vec();
    }
    let mut out = Vec::with_capacity(n);
    let mut sum = 0.0;
    for i in 0..n {
        sum += x[i];
        if i >= w {
            sum -= x[i - w];
        }
        let cnt = (i + 1).min(w);
        out.push(sum / cnt as f64);
    }
    out
}

/// Classic STL low-pass filter: moving average of length `t`, twice, then a
/// moving average of length 3 (Cleveland et al. 1990, step 3 of the inner
/// loop). Output has the same length as the input (shrunken edge windows).
pub fn stl_lowpass(x: &[f64], t: usize) -> Vec<f64> {
    let a = centered_moving_average(x, t);
    let b = centered_moving_average(&a, t);
    centered_moving_average(&b, 3)
}

/// Exact moving average of odd window `w` that returns only the valid
/// (fully covered) region: output length `n - w + 1`.
pub fn valid_moving_average(x: &[f64], w: usize) -> Vec<f64> {
    let n = x.len();
    if w == 0 || w > n {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n - w + 1);
    let mut sum: f64 = x[..w].iter().sum();
    out.push(sum / w as f64);
    for i in w..n {
        sum += x[i] - x[i - w];
        out.push(sum / w as f64);
    }
    out
}

/// Hanning-window weighted smoother of odd length `w` (used by some online
/// STL variants for light trend smoothing).
pub fn hanning_smooth(x: &[f64], w: usize) -> Vec<f64> {
    let n = x.len();
    if n == 0 || w <= 2 {
        return x.to_vec();
    }
    let weights: Vec<f64> = (0..w)
        .map(|i| 0.5 - 0.5 * (2.0 * std::f64::consts::PI * i as f64 / (w - 1) as f64).cos())
        .collect();
    let wsum: f64 = weights.iter().sum();
    let half = w / 2;
    (0..n)
        .map(|i| {
            let mut acc = 0.0;
            let mut norm = 0.0;
            for (k, &wt) in weights.iter().enumerate() {
                let j = i as isize + k as isize - half as isize;
                if j >= 0 && (j as usize) < n {
                    acc += wt * x[j as usize];
                    norm += wt;
                }
            }
            if norm > 0.0 {
                acc / norm
            } else {
                acc / wsum
            }
        })
        .collect()
}

/// Bilateral filter used by RobustSTL's denoising step: each output point is
/// a weighted average of its neighbours, with weights decaying both in time
/// distance (`sigma_d`) and in value distance (`sigma_i`). Preserves sharp
/// level shifts while removing spiky noise.
pub fn bilateral_filter(x: &[f64], half_window: usize, sigma_d: f64, sigma_i: f64) -> Vec<f64> {
    let n = x.len();
    if n == 0 || half_window == 0 {
        return x.to_vec();
    }
    let inv_2sd2 = 1.0 / (2.0 * sigma_d * sigma_d);
    let inv_2si2 = 1.0 / (2.0 * sigma_i * sigma_i);
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half_window);
            let hi = (i + half_window).min(n - 1);
            let mut num = 0.0;
            let mut den = 0.0;
            for j in lo..=hi {
                let dd = (i as f64 - j as f64).powi(2);
                let di = (x[i] - x[j]).powi(2);
                let w = (-dd * inv_2sd2 - di * inv_2si2).exp();
                num += w * x[j];
                den += w;
            }
            num / den
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_ma_flat_on_constant() {
        let x = vec![2.0; 10];
        for w in [2, 3, 5, 9] {
            let s = centered_moving_average(&x, w);
            assert!(s.iter().all(|&v| (v - 2.0).abs() < 1e-12));
        }
    }

    #[test]
    fn centered_ma_interior_value() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = centered_moving_average(&x, 3);
        assert!((s[2] - 3.0).abs() < 1e-12);
        // edge uses shrunken window: (1+2)/2
        assert!((s[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn trailing_ma_is_causal() {
        let x = [0.0, 0.0, 3.0, 0.0];
        let s = trailing_moving_average(&x, 3);
        assert!((s[0] - 0.0).abs() < 1e-12);
        assert!((s[1] - 0.0).abs() < 1e-12);
        assert!((s[2] - 1.0).abs() < 1e-12);
        assert!((s[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn valid_ma_length_and_values() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let s = valid_moving_average(&x, 3);
        assert_eq!(s.len(), 2);
        assert!((s[0] - 2.0).abs() < 1e-12);
        assert!((s[1] - 3.0).abs() < 1e-12);
        assert!(valid_moving_average(&x, 5).is_empty());
    }

    #[test]
    fn lowpass_removes_seasonal_mean() {
        // A pure sinusoid with period t should be flattened near zero.
        let t = 12;
        let x: Vec<f64> = (0..120)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin())
            .collect();
        let lp = stl_lowpass(&x, t);
        let interior = &lp[2 * t..lp.len() - 2 * t];
        assert!(
            interior.iter().all(|v| v.abs() < 0.05),
            "max {:?}",
            interior.iter().fold(0.0f64, |a, &b| a.max(b.abs()))
        );
    }

    #[test]
    fn bilateral_preserves_step_removes_noise() {
        // step signal with one spike
        let mut x = vec![0.0; 40];
        for v in x.iter_mut().skip(20) {
            *v = 10.0;
        }
        x[10] = 5.0; // spike
        let f = bilateral_filter(&x, 3, 2.0, 1.0);
        // the step edge stays sharp
        assert!(f[19] < 1.0, "left of step stays low, got {}", f[19]);
        assert!(f[20] > 9.0, "right of step stays high, got {}", f[20]);
        // the spike is pulled down toward its neighbours
        assert!(f[10] < 5.0);
    }

    #[test]
    fn hanning_smooth_reduces_variance() {
        let x: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let s = hanning_smooth(&x, 7);
        let var_before = crate::stats::variance(&x);
        let var_after = crate::stats::variance(&s);
        assert!(var_after < 0.2 * var_before);
    }
}
