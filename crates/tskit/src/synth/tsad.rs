//! Synthetic stand-ins for the TSB-UAD anomaly benchmark (17 dataset
//! families, Table 3) and the KDD CUP 2021 dataset (Table 4).
//!
//! Each family mirrors the salient statistics of its real counterpart —
//! season length, seasonality strength, noise level/tail, and the dominant
//! anomaly types. Family parameters were chosen from the dataset
//! descriptions in the TSB-UAD paper (Paparrizos et al., VLDB 2022).

use super::anomaly::{inject, pick_spans, AnomalyKind};
use super::components::{
    gaussian_noise, laplace_noise, piecewise_trend, random_walk, rng_from, SeasonTemplate,
    TrendSegment,
};
use crate::series::LabeledSeries;
use rand::rngs::StdRng;
use rand::Rng;

/// A named family of labelled series (stand-in for one TSB-UAD dataset).
#[derive(Debug, Clone)]
pub struct TsadFamily {
    /// Family name (mirrors the TSB-UAD dataset name).
    pub name: String,
    /// Labelled member series.
    pub series: Vec<LabeledSeries>,
}

struct FamilySpec {
    name: &'static str,
    length: usize,
    period: usize,
    seasonal_amp: f64,
    noise: f64,
    heavy_tail: bool,
    wandering_trend: bool,
    kinds: &'static [AnomalyKind],
    anomalies: usize,
    subseq: (usize, usize),
    /// Mackey-Glass chaotic base signal instead of season+trend.
    chaotic: bool,
}

const SPECS: &[FamilySpec] = &[
    FamilySpec {
        name: "Daphnet",
        length: 5000,
        period: 64,
        seasonal_amp: 0.8,
        noise: 0.35,
        heavy_tail: false,
        wandering_trend: false,
        kinds: &[AnomalyKind::LevelShift, AnomalyKind::Flatten],
        anomalies: 3,
        subseq: (40, 120),
        chaotic: false,
    },
    FamilySpec {
        name: "Dodgers",
        length: 6000,
        period: 144,
        seasonal_amp: 1.0,
        noise: 0.30,
        heavy_tail: false,
        wandering_trend: false,
        kinds: &[AnomalyKind::Spike, AnomalyKind::LevelShift],
        anomalies: 4,
        subseq: (30, 100),
        chaotic: false,
    },
    FamilySpec {
        name: "ECG",
        length: 8000,
        period: 96,
        seasonal_amp: 1.2,
        noise: 0.10,
        heavy_tail: false,
        wandering_trend: false,
        kinds: &[AnomalyKind::Reverse, AnomalyKind::AmplitudeChange],
        anomalies: 4,
        subseq: (60, 150),
        chaotic: false,
    },
    FamilySpec {
        name: "Genesis",
        length: 5000,
        period: 50,
        seasonal_amp: 0.9,
        noise: 0.15,
        heavy_tail: false,
        wandering_trend: false,
        kinds: &[AnomalyKind::Spike],
        anomalies: 3,
        subseq: (1, 1),
        chaotic: false,
    },
    FamilySpec {
        name: "GHL",
        length: 6000,
        period: 200,
        seasonal_amp: 0.8,
        noise: 0.12,
        heavy_tail: false,
        wandering_trend: true,
        kinds: &[AnomalyKind::LevelShift],
        anomalies: 3,
        subseq: (80, 200),
        chaotic: false,
    },
    FamilySpec {
        name: "IOPS",
        length: 7000,
        period: 144,
        seasonal_amp: 1.0,
        noise: 0.20,
        heavy_tail: false,
        wandering_trend: true,
        kinds: &[AnomalyKind::Spike, AnomalyKind::LevelShift],
        anomalies: 5,
        subseq: (20, 80),
        chaotic: false,
    },
    FamilySpec {
        name: "MGAB",
        length: 6000,
        period: 0,
        seasonal_amp: 0.0,
        noise: 0.02,
        heavy_tail: false,
        wandering_trend: false,
        kinds: &[AnomalyKind::Reverse],
        anomalies: 3,
        subseq: (50, 120),
        chaotic: true,
    },
    FamilySpec {
        name: "MITDB",
        length: 8000,
        period: 128,
        seasonal_amp: 1.1,
        noise: 0.25,
        heavy_tail: true,
        wandering_trend: false,
        kinds: &[AnomalyKind::Reverse, AnomalyKind::AmplitudeChange],
        anomalies: 4,
        subseq: (60, 160),
        chaotic: false,
    },
    FamilySpec {
        name: "NAB",
        length: 5000,
        period: 100,
        seasonal_amp: 0.5,
        noise: 0.40,
        heavy_tail: true,
        wandering_trend: true,
        kinds: &[AnomalyKind::Spike, AnomalyKind::LevelShift],
        anomalies: 3,
        subseq: (30, 90),
        chaotic: false,
    },
    FamilySpec {
        name: "NASA-MSL",
        length: 4500,
        period: 80,
        seasonal_amp: 0.4,
        noise: 0.30,
        heavy_tail: false,
        wandering_trend: true,
        kinds: &[AnomalyKind::LevelShift, AnomalyKind::Flatten],
        anomalies: 2,
        subseq: (60, 150),
        chaotic: false,
    },
    FamilySpec {
        name: "NASA-SMAP",
        length: 5000,
        period: 100,
        seasonal_amp: 0.6,
        noise: 0.25,
        heavy_tail: false,
        wandering_trend: true,
        kinds: &[AnomalyKind::Flatten, AnomalyKind::LevelShift],
        anomalies: 2,
        subseq: (60, 150),
        chaotic: false,
    },
    FamilySpec {
        name: "Occupancy",
        length: 5500,
        period: 144,
        seasonal_amp: 1.0,
        noise: 0.15,
        heavy_tail: false,
        wandering_trend: false,
        kinds: &[AnomalyKind::LevelShift],
        anomalies: 3,
        subseq: (40, 120),
        chaotic: false,
    },
    FamilySpec {
        name: "Opportunity",
        length: 5000,
        period: 60,
        seasonal_amp: 0.3,
        noise: 0.45,
        heavy_tail: true,
        wandering_trend: true,
        kinds: &[AnomalyKind::NoiseBurst],
        anomalies: 3,
        subseq: (40, 100),
        chaotic: false,
    },
    FamilySpec {
        name: "SensorScope",
        length: 5000,
        period: 120,
        seasonal_amp: 0.7,
        noise: 0.35,
        heavy_tail: false,
        wandering_trend: true,
        kinds: &[AnomalyKind::Spike, AnomalyKind::NoiseBurst],
        anomalies: 4,
        subseq: (20, 70),
        chaotic: false,
    },
    FamilySpec {
        name: "SMD",
        length: 7000,
        period: 144,
        seasonal_amp: 1.0,
        noise: 0.18,
        heavy_tail: false,
        wandering_trend: true,
        kinds: &[AnomalyKind::Spike, AnomalyKind::LevelShift],
        anomalies: 4,
        subseq: (30, 100),
        chaotic: false,
    },
    FamilySpec {
        name: "SVDB",
        length: 8000,
        period: 128,
        seasonal_amp: 1.1,
        noise: 0.20,
        heavy_tail: false,
        wandering_trend: false,
        kinds: &[AnomalyKind::Reverse, AnomalyKind::AmplitudeChange],
        anomalies: 4,
        subseq: (60, 160),
        chaotic: false,
    },
    FamilySpec {
        name: "YAHOO",
        length: 4000,
        period: 24,
        seasonal_amp: 1.0,
        noise: 0.15,
        heavy_tail: false,
        wandering_trend: true,
        kinds: &[AnomalyKind::Spike],
        anomalies: 4,
        subseq: (1, 1),
        chaotic: false,
    },
];

/// Names of all 17 families in Table 3 order.
pub fn tsad_family_names() -> Vec<&'static str> {
    SPECS.iter().map(|s| s.name).collect()
}

/// Mackey-Glass chaotic series (β=0.2, γ=0.1, n=10, τ=17), the basis of the
/// MGAB benchmark.
fn mackey_glass(n: usize, rng: &mut StdRng) -> Vec<f64> {
    let tau = 17usize;
    let (beta, gamma, pow): (f64, f64, f64) = (0.2, 0.1, 10.0);
    let warmup = 300;
    let total = n + warmup + tau;
    let mut x = Vec::with_capacity(total);
    for _ in 0..=tau {
        x.push(1.2 + 0.1 * rng.gen_range(-1.0..1.0));
    }
    for t in tau..total - 1 {
        let xd = x[t - tau];
        let next = x[t] + beta * xd / (1.0 + xd.powf(pow)) - gamma * x[t];
        x.push(next);
    }
    let out: Vec<f64> = x[x.len() - n..].to_vec();
    out
}

fn generate_base(spec: &FamilySpec, rng: &mut StdRng) -> Vec<f64> {
    if spec.chaotic {
        let mut base = mackey_glass(spec.length, rng);
        let noise = gaussian_noise(spec.length, spec.noise, rng);
        for (b, e) in base.iter_mut().zip(noise) {
            *b += e;
        }
        return base;
    }
    let season = SeasonTemplate::random(spec.period.max(2), 3, rng);
    let trend = if spec.wandering_trend {
        random_walk(spec.length, 0.0, 0.01, rng)
    } else {
        piecewise_trend(spec.length, &[TrendSegment { start: 0, level: 0.0, slope: 0.0 }])
    };
    let noise = if spec.heavy_tail {
        laplace_noise(spec.length, spec.noise / std::f64::consts::SQRT_2, rng)
    } else {
        gaussian_noise(spec.length, spec.noise, rng)
    };
    (0..spec.length).map(|i| trend[i] + spec.seasonal_amp * season.at(i) + noise[i]).collect()
}

fn generate_series(spec: &FamilySpec, idx: usize, seed: u64) -> LabeledSeries {
    let mut rng = rng_from(seed ^ (0x7A5D << 16) ^ (idx as u64));
    let mut values = generate_base(spec, &mut rng);
    let mut labels = vec![false; values.len()];
    // Paper protocol: first 3000 points (or train part) initialize online
    // methods; anomalies live in the test region.
    let split = 3000.min(values.len() * 2 / 5).max(4 * spec.period.max(25));
    let scale = crate::stats::std_dev(&values).max(1e-6);
    let spans = pick_spans(
        split + spec.period.max(25),
        values.len().saturating_sub(spec.period.max(25)),
        spec.anomalies,
        spec.subseq,
        2 * spec.period.max(25),
        &mut rng,
    );
    for &(start, len) in &spans {
        let kind = spec.kinds[rng.gen_range(0..spec.kinds.len())];
        let len = if matches!(kind, AnomalyKind::Spike) { 1 } else { len };
        inject(&mut values, &mut labels, kind, start, len, scale, &mut rng);
    }
    LabeledSeries {
        name: format!("{}-{}", spec.name, idx),
        values,
        labels,
        split,
        period: if spec.chaotic { None } else { Some(spec.period) },
    }
}

/// Generates one family by name with `n_series` members.
///
/// # Panics
/// Panics on an unknown family name (see [`tsad_family_names`]).
pub fn tsad_family(name: &str, n_series: usize, seed: u64) -> TsadFamily {
    let spec = SPECS
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown TSAD family `{name}`"));
    let series = (0..n_series).map(|i| generate_series(spec, i, seed)).collect();
    TsadFamily { name: spec.name.to_string(), series }
}

/// The full 17-family suite (Table 3 stand-in).
pub fn tsad_suite(n_series: usize, seed: u64) -> Vec<TsadFamily> {
    SPECS.iter().map(|s| tsad_family(s.name, n_series, seed)).collect()
}

/// KDD CUP 2021 stand-in: `n` series, each with exactly **one** anomaly
/// event located after the train/test split (Table 4 protocol).
pub fn kdd21_like(n: usize, seed: u64) -> Vec<LabeledSeries> {
    let kinds = [
        AnomalyKind::Spike,
        AnomalyKind::Reverse,
        AnomalyKind::Flatten,
        AnomalyKind::AmplitudeChange,
        AnomalyKind::LevelShift,
    ];
    (0..n)
        .map(|i| {
            let mut rng = rng_from(seed ^ 0x0DD2_1CC0_FFEE ^ (i as u64));
            let period = rng.gen_range(60..300);
            let length = rng.gen_range(6000..9000);
            let spec = FamilySpec {
                name: "KDD21",
                length,
                period,
                seasonal_amp: rng.gen_range(0.6..1.2),
                noise: rng.gen_range(0.08..0.3),
                heavy_tail: rng.gen_bool(0.3),
                wandering_trend: rng.gen_bool(0.5),
                kinds: &[],
                anomalies: 0,
                subseq: (0, 0),
                chaotic: false,
            };
            let mut values = generate_base(&spec, &mut rng);
            let mut labels = vec![false; values.len()];
            let split = (length as f64 * rng.gen_range(0.35..0.5)) as usize;
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let len = if matches!(kind, AnomalyKind::Spike) {
                1
            } else {
                rng.gen_range(period / 2..=period)
            };
            let start = rng.gen_range(split + 2 * period..length - len - period);
            let scale = crate::stats::std_dev(&values).max(1e-6);
            inject(&mut values, &mut labels, kind, start, len, scale, &mut rng);
            LabeledSeries {
                name: format!("KDD21-{i}"),
                values,
                labels,
                split,
                period: Some(period),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_17_families() {
        let names = tsad_family_names();
        assert_eq!(names.len(), 17);
        assert!(names.contains(&"YAHOO"));
        assert!(names.contains(&"MGAB"));
    }

    #[test]
    fn family_series_have_test_anomalies() {
        for name in ["ECG", "IOPS", "YAHOO", "MGAB"] {
            let fam = tsad_family(name, 2, 11);
            assert_eq!(fam.series.len(), 2);
            for s in &fam.series {
                assert!(s.split >= 100);
                assert!(
                    s.test_anomaly_count() > 0,
                    "{}: no anomalies injected in test region",
                    s.name
                );
                // train region is clean
                assert!(s.labels[..s.split].iter().all(|&b| !b));
            }
        }
    }

    #[test]
    fn kdd21_has_exactly_one_event() {
        let series = kdd21_like(5, 3);
        assert_eq!(series.len(), 5);
        for s in &series {
            let marked = s.labels.iter().filter(|&&b| b).count();
            assert!(marked >= 1);
            // one contiguous event: count label edges
            let mut edges = 0;
            let mut prev = false;
            for &l in &s.labels {
                if l != prev {
                    edges += 1;
                    prev = l;
                }
            }
            assert!(edges <= 2, "{}: more than one event", s.name);
            assert!(s.labels[..s.split].iter().all(|&b| !b));
        }
    }

    #[test]
    fn mackey_glass_is_bounded_and_aperiodic() {
        let mut rng = rng_from(5);
        let x = mackey_glass(3000, &mut rng);
        assert_eq!(x.len(), 3000);
        assert!(x.iter().all(|v| v.is_finite() && v.abs() < 5.0));
        // chaotic: autocorrelation should decay, no clean period
        assert!(crate::stats::seasonal_strength(&x, 50) < 0.9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = tsad_family("ECG", 1, 9);
        let b = tsad_family("ECG", 1, 9);
        assert_eq!(a.series[0].values, b.series[0].values);
    }
}
