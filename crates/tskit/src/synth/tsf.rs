//! Synthetic stand-ins for the six Informer forecasting benchmarks
//! (ETTm2, Electricity, Exchange, Traffic, Weather, Illness — Table 5).
//!
//! Each family reproduces the property that drives Table 5's outcome:
//! the strength and length of seasonality. ETTm2 / Electricity / Traffic /
//! Weather are strongly seasonal (STD-based forecasters competitive with
//! the best deep models); Exchange is a random walk and Illness is short
//! with weak seasonality (STD forecasters fall behind).

use super::components::{
    gaussian_noise, random_walk, rng_from, sample_standard_normal, SeasonTemplate,
};
use rand::Rng;

/// A forecasting dataset with the standard chronological split.
#[derive(Debug, Clone)]
pub struct TsfDataset {
    /// Dataset identifier (mirrors the Informer benchmark name).
    pub name: String,
    /// Values (train + validation + test, chronological).
    pub values: Vec<f64>,
    /// Dominant seasonal period.
    pub period: usize,
    /// End of the training region (exclusive).
    pub train_end: usize,
    /// End of the validation region (exclusive); test is the remainder.
    pub val_end: usize,
    /// Forecasting horizons evaluated on this dataset.
    pub horizons: Vec<usize>,
}

impl TsfDataset {
    /// Training slice.
    pub fn train(&self) -> &[f64] {
        &self.values[..self.train_end]
    }

    /// Validation slice.
    pub fn val(&self) -> &[f64] {
        &self.values[self.train_end..self.val_end]
    }

    /// Test slice.
    pub fn test(&self) -> &[f64] {
        &self.values[self.val_end..]
    }
}

/// Names of the six datasets in Table 5 order.
pub fn tsf_dataset_names() -> Vec<&'static str> {
    vec!["ETTm2", "Electricity", "Exchange", "Traffic", "Weather", "Illness"]
}

fn split(n: usize) -> (usize, usize) {
    // Informer convention: 70% train / 10% val / 20% test.
    let train_end = n * 7 / 10;
    let val_end = n * 8 / 10;
    (train_end, val_end)
}

/// Generates one dataset by name.
///
/// # Panics
/// Panics on an unknown name (see [`tsf_dataset_names`]).
pub fn tsf_dataset(name: &str, seed: u64) -> TsfDataset {
    let mut rng = rng_from(seed ^ 0x75F0_0000 ^ name.bytes().map(u64::from).sum::<u64>());
    let long_horizons = vec![96, 192, 336, 720];
    match name {
        // 15-minute data, daily season of 96 steps; smooth temperature-like
        // trend; strong seasonality.
        "ETTm2" => {
            let n = 11520; // 120 days
            let t = 96;
            let season = SeasonTemplate::random(t, 3, &mut rng);
            let trend = random_walk(n, 0.0, 0.02, &mut rng);
            let noise = gaussian_noise(n, 0.15, &mut rng);
            let values = (0..n).map(|i| trend[i] + 1.0 * season.at(i) + noise[i]).collect();
            let (a, b) = split(n);
            TsfDataset {
                name: name.into(),
                values,
                period: t,
                train_end: a,
                val_end: b,
                horizons: long_horizons,
            }
        }
        // hourly consumption: daily (24) nested in weekly (168) pattern,
        // very strong seasonality, low noise.
        "Electricity" => {
            let n = 10080; // 60 weeks of hourly data
            let t = 168;
            let daily = SeasonTemplate::request_rate(24, &mut rng);
            let weekly = SeasonTemplate::random(t, 2, &mut rng);
            let trend = random_walk(n, 0.0, 0.005, &mut rng);
            let noise = gaussian_noise(n, 0.08, &mut rng);
            let values = (0..n)
                .map(|i| trend[i] + 0.9 * daily.at(i) + 0.5 * weekly.at(i) + noise[i])
                .collect();
            let (a, b) = split(n);
            TsfDataset {
                name: name.into(),
                values,
                period: t,
                train_end: a,
                val_end: b,
                horizons: long_horizons,
            }
        }
        // daily FX rates: pure random walk, no seasonality at all.
        "Exchange" => {
            let n = 7588;
            let values = random_walk(n, 0.8, 0.006, &mut rng);
            let (a, b) = split(n);
            TsfDataset {
                name: name.into(),
                values,
                period: 30,
                train_end: a,
                val_end: b,
                horizons: long_horizons,
            }
        }
        // hourly road occupancy: strong daily+weekly season, occasional
        // congestion spikes, non-negative.
        "Traffic" => {
            let n = 10080;
            let t = 168;
            let daily = SeasonTemplate::request_rate(24, &mut rng);
            let weekly = SeasonTemplate::random(t, 2, &mut rng);
            let noise = gaussian_noise(n, 0.06, &mut rng);
            let values = (0..n)
                .map(|i| {
                    let mut v = 0.5 + 0.35 * daily.at(i) + 0.15 * weekly.at(i) + noise[i];
                    // sporadic congestion bursts
                    if rng.gen_bool(0.002) {
                        v += rng.gen_range(0.3..0.8);
                    }
                    v.max(0.0)
                })
                .collect();
            let (a, b) = split(n);
            TsfDataset {
                name: name.into(),
                values,
                period: t,
                train_end: a,
                val_end: b,
                horizons: long_horizons,
            }
        }
        // 10-minute meteorological data: very smooth, strong daily season
        // (144 steps), tiny noise — the easiest family in Table 5.
        "Weather" => {
            let n = 14400; // 100 days
            let t = 144;
            let season = SeasonTemplate::random(t, 2, &mut rng);
            let trend = random_walk(n, 0.0, 0.003, &mut rng);
            // smooth the noise with an AR(1) to mimic weather inertia
            let mut ar = 0.0;
            let values = (0..n)
                .map(|i| {
                    ar = 0.9 * ar + 0.01 * sample_standard_normal(&mut rng);
                    trend[i] + 0.12 * season.at(i) + ar
                })
                .collect();
            let (a, b) = split(n);
            TsfDataset {
                name: name.into(),
                values,
                period: t,
                train_end: a,
                val_end: b,
                horizons: long_horizons,
            }
        }
        // weekly influenza counts: short series, weak yearly (52-week)
        // seasonality, level changes between flu seasons.
        "Illness" => {
            let n = 966;
            let t = 52;
            let season = SeasonTemplate::random(t, 2, &mut rng);
            let trend = random_walk(n, 1.5, 0.05, &mut rng);
            let noise = gaussian_noise(n, 0.35, &mut rng);
            let values = (0..n)
                .map(|i| {
                    // season amplitude itself varies year to year
                    let year = i / t;
                    let amp = 0.5 + 0.3 * ((year * 2654435761) % 7) as f64 / 7.0;
                    (trend[i] + amp * season.at(i) + noise[i]).max(0.0)
                })
                .collect();
            let (a, b) = split(n);
            TsfDataset {
                name: name.into(),
                values,
                period: t,
                train_end: a,
                val_end: b,
                horizons: vec![24, 36, 48, 60],
            }
        }
        other => panic!("unknown TSF dataset `{other}`"),
    }
}

/// The full six-dataset suite (Table 5 stand-in).
pub fn tsf_suite(seed: u64) -> Vec<TsfDataset> {
    tsf_dataset_names().into_iter().map(|n| tsf_dataset(n, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::seasonal_strength;

    #[test]
    fn suite_has_six_datasets_with_valid_splits() {
        let suite = tsf_suite(1);
        assert_eq!(suite.len(), 6);
        for d in &suite {
            assert!(d.train_end < d.val_end && d.val_end < d.values.len(), "{}", d.name);
            assert!(!d.horizons.is_empty());
            let max_h = *d.horizons.iter().max().unwrap();
            assert!(d.test().len() > max_h, "{}: test region shorter than max horizon", d.name);
            assert!(d.values.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn seasonal_families_are_strongly_seasonal() {
        for name in ["ETTm2", "Traffic", "Weather"] {
            let d = tsf_dataset(name, 2);
            let s = seasonal_strength(&d.values, d.period);
            assert!(s > 0.5, "{name}: seasonal strength {s}");
        }
    }

    #[test]
    fn exchange_is_not_seasonal() {
        let d = tsf_dataset("Exchange", 2);
        // test a handful of candidate periods: none should be strong
        for t in [24, 30, 96, 168] {
            assert!(seasonal_strength(&d.values, t) < 0.4, "period {t}");
        }
    }

    #[test]
    fn illness_uses_short_horizons() {
        let d = tsf_dataset("Illness", 3);
        assert_eq!(d.horizons, vec![24, 36, 48, 60]);
        assert!(d.values.len() < 1500);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(tsf_dataset("ETTm2", 5).values, tsf_dataset("ETTm2", 5).values);
        assert_ne!(tsf_dataset("ETTm2", 5).values, tsf_dataset("ETTm2", 6).values);
    }
}
