//! Synthetic workload generators.
//!
//! The paper evaluates on (a) two synthetic STD datasets with known ground
//! truth, (b) two Alibaba-internal real series, (c) the TSB-UAD anomaly
//! benchmark, (d) the KDD CUP 2021 dataset, and (e) six public forecasting
//! datasets. Only (a) is reconstructible exactly; the others are either
//! proprietary or unavailable offline, so this module generates synthetic
//! stand-ins that preserve the characteristics the algorithms are sensitive
//! to (seasonality strength and length, noise level and tail weight,
//! trend regime changes, anomaly types). See `DESIGN.md` §4 for the full
//! substitution table.

mod anomaly;
mod components;
mod std_data;
mod tsad;
mod tsf;

pub use anomaly::{inject, AnomalyKind, InjectedAnomaly};
pub use components::{
    gaussian_noise, laplace_noise, piecewise_trend, random_walk, SeasonTemplate, TrendSegment,
};
pub use std_data::{real1_like, real2_like, syn1, syn2, StdDataset};
pub use tsad::{kdd21_like, tsad_family, tsad_family_names, tsad_suite, TsadFamily};
pub use tsf::{tsf_dataset, tsf_dataset_names, tsf_suite, TsfDataset};
