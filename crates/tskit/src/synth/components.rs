//! Building blocks for the synthetic generators: seasonal templates,
//! trend shapes and noise processes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fixed one-period seasonal shape, evaluated by phase index.
///
/// The template is a random sum of a few harmonics, normalized so its
/// maximum absolute value is 1; the amplitude is applied at evaluation.
/// Using a *fixed* template (rather than re-sampling noise each period)
/// gives the decomposition a well-defined seasonal ground truth.
#[derive(Debug, Clone)]
pub struct SeasonTemplate {
    period: usize,
    values: Vec<f64>,
}

impl SeasonTemplate {
    /// Samples a random smooth template with `harmonics` sinusoidal terms.
    pub fn random(period: usize, harmonics: usize, rng: &mut StdRng) -> Self {
        assert!(period >= 2, "season period must be >= 2");
        let h = harmonics.max(1);
        let amps: Vec<f64> = (0..h).map(|k| rng.gen_range(0.3..1.0) / (k + 1) as f64).collect();
        let phases: Vec<f64> =
            (0..h).map(|_| rng.gen_range(0.0..2.0 * std::f64::consts::PI)).collect();
        let mut values: Vec<f64> = (0..period)
            .map(|i| {
                let x = i as f64 / period as f64;
                amps.iter()
                    .zip(&phases)
                    .enumerate()
                    .map(|(k, (a, p))| {
                        a * (2.0 * std::f64::consts::PI * (k + 1) as f64 * x + p).sin()
                    })
                    .sum()
            })
            .collect();
        // centre and normalize to max-abs 1
        let mean = crate::stats::mean(&values);
        for v in values.iter_mut() {
            *v -= mean;
        }
        let maxabs = values.iter().fold(0.0f64, |a, &b| a.max(b.abs())).max(1e-12);
        for v in values.iter_mut() {
            *v /= maxabs;
        }
        SeasonTemplate { period, values }
    }

    /// A "request rate"-shaped template: low at night, a broad daytime bump
    /// with a morning ramp — the shape of the paper's Real1/Real2 API
    /// traffic (Figure 4 (c)-(d)).
    pub fn request_rate(period: usize, rng: &mut StdRng) -> Self {
        assert!(period >= 4, "request-rate period must be >= 4");
        let peak_pos = rng.gen_range(0.45..0.6);
        let width = rng.gen_range(0.15..0.25);
        let shoulder = rng.gen_range(0.2..0.4);
        let mut values: Vec<f64> = (0..period)
            .map(|i| {
                let x = i as f64 / period as f64;
                let main = (-(x - peak_pos).powi(2) / (2.0 * width * width)).exp();
                let secondary =
                    shoulder * (-(x - peak_pos - 0.18).powi(2) / (2.0 * 0.05f64.powi(2))).exp();
                main + secondary
            })
            .collect();
        let mean = crate::stats::mean(&values);
        for v in values.iter_mut() {
            *v -= mean;
        }
        let maxabs = values.iter().fold(0.0f64, |a, &b| a.max(b.abs())).max(1e-12);
        for v in values.iter_mut() {
            *v /= maxabs;
        }
        SeasonTemplate { period, values }
    }

    /// Season length.
    pub fn period(&self) -> usize {
        self.period
    }

    /// Template value at phase `i mod period`.
    #[inline]
    pub fn at(&self, i: usize) -> f64 {
        self.values[i % self.period]
    }

    /// Renders `n` points with the given amplitude starting at phase 0.
    pub fn render(&self, n: usize, amplitude: f64) -> Vec<f64> {
        (0..n).map(|i| amplitude * self.at(i)).collect()
    }

    /// Renders `n` points where each seasonal cycle `c` may be shifted by
    /// `shift_of(c)` points (positive shift delays the pattern). This is how
    /// the Syn2 "seasonality shift" dataset is built.
    pub fn render_shifted(
        &self,
        n: usize,
        amplitude: f64,
        shift_of: impl Fn(usize) -> i64,
    ) -> Vec<f64> {
        let t = self.period as i64;
        (0..n)
            .map(|i| {
                let cycle = i / self.period;
                let shift = shift_of(cycle);
                let idx = (i as i64 - shift).rem_euclid(t) as usize;
                amplitude * self.values[idx]
            })
            .collect()
    }
}

/// One linear segment of a piecewise trend.
#[derive(Debug, Clone, Copy)]
pub struct TrendSegment {
    /// First index of the segment.
    pub start: usize,
    /// Level at the segment start (jumps between segments are allowed —
    /// that is the "abrupt trend change" the paper stresses).
    pub level: f64,
    /// Per-step slope within the segment.
    pub slope: f64,
}

/// Renders a piecewise-linear trend of length `n` from ordered segments.
/// The first segment must start at 0.
pub fn piecewise_trend(n: usize, segments: &[TrendSegment]) -> Vec<f64> {
    assert!(!segments.is_empty(), "piecewise_trend: need at least one segment");
    assert_eq!(segments[0].start, 0, "piecewise_trend: first segment must start at 0");
    let mut out = Vec::with_capacity(n);
    let mut seg = 0usize;
    for i in 0..n {
        while seg + 1 < segments.len() && segments[seg + 1].start <= i {
            seg += 1;
        }
        let s = &segments[seg];
        out.push(s.level + s.slope * (i - s.start) as f64);
    }
    out
}

/// Gaussian white noise.
pub fn gaussian_noise(n: usize, sigma: f64, rng: &mut StdRng) -> Vec<f64> {
    (0..n).map(|_| sigma * sample_standard_normal(rng)).collect()
}

/// Laplace (double-exponential) noise — heavier tails, used for the noisy
/// weak-seasonality families.
pub fn laplace_noise(n: usize, scale: f64, rng: &mut StdRng) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(-0.5..0.5);
            -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
        })
        .collect()
}

/// Gaussian random walk starting at `start` with step deviation `sigma`.
pub fn random_walk(n: usize, start: f64, sigma: f64, rng: &mut StdRng) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut v = start;
    for _ in 0..n {
        v += sigma * sample_standard_normal(rng);
        out.push(v);
    }
    out
}

/// Standard normal sample via Box–Muller (keeps us independent of
/// `rand_distr`).
pub fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Seeded RNG helper so generators are reproducible.
pub(crate) fn rng_from(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_is_periodic_and_normalized() {
        let mut rng = rng_from(1);
        let t = SeasonTemplate::random(50, 3, &mut rng);
        assert_eq!(t.period(), 50);
        assert!((t.at(3) - t.at(53)).abs() < 1e-12);
        let maxabs = (0..50).map(|i| t.at(i).abs()).fold(0.0f64, f64::max);
        assert!((maxabs - 1.0).abs() < 1e-9);
        let mean: f64 = (0..50).map(|i| t.at(i)).sum::<f64>() / 50.0;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn render_shifted_moves_pattern() {
        let mut rng = rng_from(2);
        let t = SeasonTemplate::random(20, 2, &mut rng);
        let base = t.render(60, 1.0);
        let shifted = t.render_shifted(60, 1.0, |c| if c == 1 { 5 } else { 0 });
        // cycle 0 identical
        for i in 0..20 {
            assert!((base[i] - shifted[i]).abs() < 1e-12);
        }
        // cycle 1 delayed by 5
        for i in 25..40 {
            assert!((shifted[i] - base[i - 5]).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn piecewise_trend_jumps() {
        let tr = piecewise_trend(
            10,
            &[
                TrendSegment { start: 0, level: 0.0, slope: 0.0 },
                TrendSegment { start: 5, level: 2.0, slope: 1.0 },
            ],
        );
        assert_eq!(tr[4], 0.0);
        assert_eq!(tr[5], 2.0);
        assert_eq!(tr[7], 4.0);
    }

    #[test]
    fn noise_moments_are_sane() {
        let mut rng = rng_from(3);
        let g = gaussian_noise(20_000, 2.0, &mut rng);
        assert!(crate::stats::mean(&g).abs() < 0.1);
        assert!((crate::stats::std_dev(&g) - 2.0).abs() < 0.1);
        let l = laplace_noise(20_000, 1.0, &mut rng);
        assert!(crate::stats::mean(&l).abs() < 0.1);
        // Laplace(b=1) std = sqrt(2)
        assert!((crate::stats::std_dev(&l) - std::f64::consts::SQRT_2).abs() < 0.15);
    }

    #[test]
    fn random_walk_is_continuous() {
        let mut rng = rng_from(4);
        let w = random_walk(100, 5.0, 0.1, &mut rng);
        assert_eq!(w.len(), 100);
        for i in 1..100 {
            assert!((w[i] - w[i - 1]).abs() < 1.0);
        }
    }

    #[test]
    fn generators_are_reproducible() {
        let a = gaussian_noise(10, 1.0, &mut rng_from(42));
        let b = gaussian_noise(10, 1.0, &mut rng_from(42));
        assert_eq!(a, b);
    }
}
