//! Anomaly injection for the TSAD benchmark families.

use rand::rngs::StdRng;
use rand::Rng;

/// The anomaly types injected into the synthetic TSAD families, chosen to
/// cover the behaviours in TSB-UAD: point anomalies (spikes), contextual
/// anomalies (level shifts), and subsequence anomalies (pattern
/// distortions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// A single extreme point, `magnitude` standard deviations away.
    Spike,
    /// A sustained additive offset over a span.
    LevelShift,
    /// A span replaced by its local mean (the pattern disappears).
    Flatten,
    /// A span with strongly amplified noise.
    NoiseBurst,
    /// A span where the seasonal pattern is time-reversed (shape anomaly,
    /// invisible to pure amplitude detectors).
    Reverse,
    /// A span where the pattern amplitude is scaled.
    AmplitudeChange,
}

/// Where and what was injected.
#[derive(Debug, Clone, Copy)]
pub struct InjectedAnomaly {
    /// Anomaly type.
    pub kind: AnomalyKind,
    /// First affected index.
    pub start: usize,
    /// Length of the affected span (1 for spikes).
    pub len: usize,
}

/// Injects one anomaly of `kind` into `values[start..start+len]`, marking
/// `labels` accordingly. `scale` should be the typical signal deviation so
/// magnitudes are comparable across families. Returns the injection record.
///
/// # Panics
/// Panics if the span exceeds the series bounds.
pub fn inject(
    values: &mut [f64],
    labels: &mut [bool],
    kind: AnomalyKind,
    start: usize,
    len: usize,
    scale: f64,
    rng: &mut StdRng,
) -> InjectedAnomaly {
    assert!(start + len <= values.len(), "anomaly span out of bounds");
    assert!(len >= 1, "anomaly span must be non-empty");
    match kind {
        AnomalyKind::Spike => {
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let mag = rng.gen_range(4.0..8.0);
            values[start] += sign * mag * scale;
            labels[start] = true;
            return InjectedAnomaly { kind, start, len: 1 };
        }
        AnomalyKind::LevelShift => {
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let mag = rng.gen_range(2.5..5.0);
            for v in values[start..start + len].iter_mut() {
                *v += sign * mag * scale;
            }
        }
        AnomalyKind::Flatten => {
            let mean = values[start..start + len].iter().sum::<f64>() / len as f64;
            for v in values[start..start + len].iter_mut() {
                *v = mean;
            }
        }
        AnomalyKind::NoiseBurst => {
            for v in values[start..start + len].iter_mut() {
                *v += 3.0 * scale * super::components::sample_standard_normal(rng);
            }
        }
        AnomalyKind::Reverse => {
            values[start..start + len].reverse();
        }
        AnomalyKind::AmplitudeChange => {
            let mean = values[start..start + len].iter().sum::<f64>() / len as f64;
            let factor = if rng.gen_bool(0.5) {
                rng.gen_range(2.0..3.0)
            } else {
                rng.gen_range(0.1..0.4)
            };
            for v in values[start..start + len].iter_mut() {
                *v = mean + factor * (*v - mean);
            }
        }
    }
    for l in labels[start..start + len].iter_mut() {
        *l = true;
    }
    InjectedAnomaly { kind, start, len }
}

/// Picks `count` non-overlapping anomaly spans in `[lo, hi)` with lengths in
/// `len_range`, keeping a `gap` between them. Returns (start, len) pairs in
/// increasing order. May return fewer than `count` if space runs out.
pub fn pick_spans(
    lo: usize,
    hi: usize,
    count: usize,
    len_range: (usize, usize),
    gap: usize,
    rng: &mut StdRng,
) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut attempts = 0;
    while spans.len() < count && attempts < count * 50 {
        attempts += 1;
        let len = rng.gen_range(len_range.0..=len_range.1);
        if hi <= lo + len {
            break;
        }
        let start = rng.gen_range(lo..hi - len);
        let clashes = spans.iter().any(|&(s, l)| {
            let a0 = start.saturating_sub(gap);
            let a1 = start + len + gap;
            s < a1 && a0 < s + l
        });
        if !clashes {
            spans.push((start, len));
        }
    }
    spans.sort_unstable();
    spans
}

#[cfg(test)]
mod tests {
    use super::super::components::rng_from;
    use super::*;

    #[test]
    fn spike_marks_one_point() {
        let mut rng = rng_from(1);
        let mut v = vec![0.0; 100];
        let mut l = vec![false; 100];
        let rec = inject(&mut v, &mut l, AnomalyKind::Spike, 50, 10, 1.0, &mut rng);
        assert_eq!(rec.len, 1);
        assert_eq!(l.iter().filter(|&&b| b).count(), 1);
        assert!(l[50]);
        assert!(v[50].abs() >= 4.0);
        assert_eq!(v[51], 0.0);
    }

    #[test]
    fn level_shift_marks_span() {
        let mut rng = rng_from(2);
        let mut v = vec![1.0; 100];
        let mut l = vec![false; 100];
        inject(&mut v, &mut l, AnomalyKind::LevelShift, 10, 20, 1.0, &mut rng);
        assert_eq!(l.iter().filter(|&&b| b).count(), 20);
        assert!((v[10] - 1.0).abs() >= 2.5);
        assert_eq!(v[9], 1.0);
        assert_eq!(v[30], 1.0);
    }

    #[test]
    fn flatten_replaces_with_mean() {
        let mut rng = rng_from(3);
        let mut v: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut l = vec![false; 50];
        inject(&mut v, &mut l, AnomalyKind::Flatten, 20, 10, 1.0, &mut rng);
        let first = v[20];
        assert!(v[20..30].iter().all(|&x| (x - first).abs() < 1e-12));
    }

    #[test]
    fn reverse_keeps_values_set() {
        let mut rng = rng_from(4);
        let mut v: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let mut l = vec![false; 30];
        inject(&mut v, &mut l, AnomalyKind::Reverse, 5, 10, 1.0, &mut rng);
        assert_eq!(v[5], 14.0);
        assert_eq!(v[14], 5.0);
        assert_eq!(v[4], 4.0);
    }

    #[test]
    fn spans_do_not_overlap() {
        let mut rng = rng_from(5);
        let spans = pick_spans(100, 1000, 8, (10, 30), 20, &mut rng);
        assert!(!spans.is_empty());
        for w in spans.windows(2) {
            let (s0, l0) = w[0];
            let (s1, _) = w[1];
            assert!(s0 + l0 + 20 <= s1, "spans overlap or too close: {:?}", w);
        }
        for &(s, l) in &spans {
            assert!(s >= 100 && s + l <= 1000);
        }
    }

    #[test]
    fn pick_spans_gives_up_gracefully() {
        let mut rng = rng_from(6);
        // impossible request: tiny range, many spans
        let spans = pick_spans(0, 50, 10, (20, 30), 10, &mut rng);
        assert!(spans.len() <= 2);
    }
}
