//! The four decomposition-quality datasets of the paper's §5.1.1:
//! Syn1, Syn2 (synthetic, with ground truth) and Real1/Real2-like series.

use super::components::{
    gaussian_noise, laplace_noise, piecewise_trend, rng_from, SeasonTemplate, TrendSegment,
};
use crate::series::Decomposition;

/// A decomposition-benchmark dataset: observed values, the seasonal period,
/// and (for synthetic data) the ground-truth components.
#[derive(Debug, Clone)]
pub struct StdDataset {
    /// Dataset identifier (`"Syn1"`, `"Syn2"`, `"Real1"`, `"Real2"`).
    pub name: String,
    /// Observed series `y = trend + seasonal + residual`.
    pub values: Vec<f64>,
    /// Seasonal period used by all methods.
    pub period: usize,
    /// Ground truth components (synthetic datasets only).
    pub truth: Option<Decomposition>,
}

/// Syn1 — abrupt **trend changes** (paper Fig. 4(a), Table 2 upper half).
///
/// 7000 points, period 500: a smooth seasonal template plus a piecewise
/// trend with three abrupt level changes, plus Gaussian noise. The red line
/// of Fig. 4(a) (ground-truth trend) jumps between levels around 0–4.
pub fn syn1(seed: u64) -> StdDataset {
    let n = 7000;
    let t = 500;
    let mut rng = rng_from(seed.wrapping_add(0x5EED_0001));
    let season = SeasonTemplate::random(t, 3, &mut rng);
    let trend = piecewise_trend(
        n,
        &[
            TrendSegment { start: 0, level: 0.5, slope: 0.0 },
            TrendSegment { start: 1800, level: 2.5, slope: 0.0002 },
            TrendSegment { start: 3600, level: 4.0, slope: -0.0003 },
            TrendSegment { start: 5200, level: 1.0, slope: 0.0 },
        ],
    );
    let seasonal = season.render(n, 1.0);
    let residual = gaussian_noise(n, 0.05, &mut rng);
    let values: Vec<f64> = (0..n).map(|i| trend[i] + seasonal[i] + residual[i]).collect();
    StdDataset {
        name: "Syn1".into(),
        values,
        period: t,
        truth: Some(Decomposition { trend, seasonal, residual }),
    }
}

/// Syn2 — **seasonality shift** (paper Fig. 4(b), Table 2 lower half).
///
/// 2500 points, period 250 (10 cycles); four consecutive cycles are shifted
/// by 10 points — "not visually distinguishable", but fatal for methods
/// that assume a rigid phase. Flat trend, light noise.
pub fn syn2(seed: u64) -> StdDataset {
    let n = 2500;
    let t = 250;
    let shift_points = 10i64;
    let mut rng = rng_from(seed.wrapping_add(0x5EED_0002));
    let season = SeasonTemplate::random(t, 4, &mut rng);
    // cycles 4..8 are delayed by 10 points
    let seasonal =
        season.render_shifted(n, 2.0, |c| if (4..8).contains(&c) { shift_points } else { 0 });
    let trend = piecewise_trend(n, &[TrendSegment { start: 0, level: 0.0, slope: 0.0 }]);
    let residual = gaussian_noise(n, 0.05, &mut rng);
    let values: Vec<f64> = (0..n).map(|i| trend[i] + seasonal[i] + residual[i]).collect();
    StdDataset {
        name: "Syn2".into(),
        values,
        period: t,
        truth: Some(Decomposition { trend, seasonal, residual }),
    }
}

/// Real1-like — API request rate with an **abrupt trend change**
/// (paper Fig. 4(c)). Daily pattern, values roughly in [0, 1], a sustained
/// capacity step around 60% of the series. No ground truth (matches the
/// paper: Fig. 6 comparisons are qualitative).
pub fn real1_like(seed: u64) -> StdDataset {
    let n = 9000;
    let t = 500;
    let mut rng = rng_from(seed.wrapping_add(0x5EED_0003));
    let season = SeasonTemplate::request_rate(t, &mut rng);
    let trend = piecewise_trend(
        n,
        &[
            TrendSegment { start: 0, level: 0.35, slope: 0.0 },
            TrendSegment { start: 5400, level: 0.65, slope: -0.00001 },
        ],
    );
    let seasonal = season.render(n, 0.25);
    let noise = gaussian_noise(n, 0.02, &mut rng);
    let values: Vec<f64> =
        (0..n).map(|i| (trend[i] + seasonal[i] + noise[i]).max(0.0)).collect();
    StdDataset { name: "Real1".into(), values, period: t, truth: None }
}

/// Real2-like — **weak seasonality with observable noise**
/// (paper Fig. 4(d)). Heavy-tailed noise dominates a small daily pattern;
/// the trend drifts slowly.
pub fn real2_like(seed: u64) -> StdDataset {
    let n = 7000;
    let t = 500;
    let mut rng = rng_from(seed.wrapping_add(0x5EED_0004));
    let season = SeasonTemplate::request_rate(t, &mut rng);
    let trend = piecewise_trend(
        n,
        &[
            TrendSegment { start: 0, level: 0.4, slope: 0.00002 },
            TrendSegment { start: 3500, level: 0.5, slope: -0.00002 },
        ],
    );
    let seasonal = season.render(n, 0.06);
    let noise = laplace_noise(n, 0.05, &mut rng);
    let values: Vec<f64> =
        (0..n).map(|i| (trend[i] + seasonal[i] + noise[i]).max(0.0)).collect();
    StdDataset { name: "Real2".into(), values, period: t, truth: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::seasonal_strength;

    #[test]
    fn syn1_additive_identity_and_shape() {
        let d = syn1(7);
        assert_eq!(d.values.len(), 7000);
        assert_eq!(d.period, 500);
        let truth = d.truth.as_ref().unwrap();
        assert_eq!(truth.check_additive(&d.values, 1e-9), None);
        // abrupt jump exists at 1800
        assert!((truth.trend[1800] - truth.trend[1799]).abs() > 1.0);
    }

    #[test]
    fn syn2_shift_is_present_and_bounded() {
        let d = syn2(7);
        let truth = d.truth.unwrap();
        // cycle 3 (unshifted) vs cycle 4 (shifted): same template, offset 10
        let t = d.period;
        for i in 0..t - 10 {
            let unshifted = truth.seasonal[3 * t + i];
            let shifted = truth.seasonal[4 * t + i + 10];
            assert!((unshifted - shifted).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn real_series_are_nonnegative_and_seasonal() {
        let r1 = real1_like(3);
        assert!(r1.values.iter().all(|&v| v >= 0.0));
        assert!(seasonal_strength(&r1.values, r1.period) > 0.6);
        let r2 = real2_like(3);
        assert!(r2.values.iter().all(|&v| v >= 0.0));
        // weak seasonality by construction
        assert!(seasonal_strength(&r2.values, r2.period) < 0.6);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(syn1(1).values, syn1(1).values);
        assert_ne!(syn1(1).values, syn1(2).values);
    }
}
