//! # tskit — time-series substrate
//!
//! Foundation crate for the OneShotSTL reproduction. Everything here is a
//! *substrate* the paper's evaluation depends on rather than the paper's
//! contribution itself:
//!
//! - [`series`]: component containers ([`Decomposition`], [`DecompPoint`])
//!   and labelled series used by the anomaly-detection benchmarks.
//! - [`stats`]: streaming-friendly descriptive statistics, autocorrelation.
//! - [`ring`]: fixed-capacity ring buffer used by the online algorithms.
//! - [`fft`]: radix-2 FFT used by the matrix-profile methods (MASS).
//! - [`linalg`]: symmetric banded matrices with LDLᵀ factorization — the
//!   numeric core behind JointSTL and ℓ1 trend filtering.
//! - [`dense`]: small dense solves / least squares for LOESS and AR fitting.
//! - [`loess`]: LOESS local regression (STL's smoother).
//! - [`period`]: ACF-based seasonality-length detection (TSB-UAD's
//!   `find_length` heuristic).
//! - [`smooth`]: moving averages and related linear filters.
//! - [`synth`]: synthetic workload generators that stand in for the paper's
//!   datasets (see `DESIGN.md` §4 for the substitution rationale).
//! - [`io`]: tiny CSV/markdown writers for the experiment harness.

pub mod dense;
pub mod error;
pub mod fft;
pub mod io;
pub mod linalg;
pub mod loess;
pub mod period;
pub mod ring;
pub mod series;
pub mod smooth;
pub mod stats;
pub mod synth;

pub use error::{Result, TsError};
pub use series::{DecompPoint, Decomposition, LabeledSeries};
