//! Iterative radix-2 FFT and FFT-based sliding dot products.
//!
//! The matrix-profile anomaly detectors (MASS / STOMP / DAMP) need the
//! sliding dot product between a query and every window of a series. The
//! FFT turns that from `O(n·m)` into `O(n log n)`. No external FFT crate is
//! used; this is a self-contained substrate module.

/// Complex number with `f64` parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Complex multiplication.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Complex) -> Complex {
        Complex::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

/// Next power of two ≥ `n` (and ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    let mut p = 1;
    while p < n {
        p <<= 1;
    }
    p
}

/// In-place iterative radix-2 FFT. `inverse = true` computes the unscaled
/// inverse transform (divide by `len` afterwards; [`ifft`] does this).
///
/// # Panics
/// Panics if `buf.len()` is not a power of two.
pub fn fft_in_place(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    // bit-reversal permutation
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2].mul(w);
                buf[i + k] = u + v;
                buf[i + k + len / 2] = u - v;
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal zero-padded to the next power of two of
/// `min_len.max(x.len())`.
pub fn rfft(x: &[f64], min_len: usize) -> Vec<Complex> {
    let n = next_pow2(min_len.max(x.len()));
    let mut buf = vec![Complex::default(); n];
    for (b, &v) in buf.iter_mut().zip(x) {
        b.re = v;
    }
    fft_in_place(&mut buf, false);
    buf
}

/// Inverse FFT with 1/n scaling; returns the real parts.
pub fn ifft(mut buf: Vec<Complex>) -> Vec<f64> {
    let n = buf.len();
    fft_in_place(&mut buf, true);
    buf.into_iter().map(|c| c.re / n as f64).collect()
}

/// Sliding dot products of `query` against every length-`m` window of
/// `series`, where `m = query.len()`:
/// `out[i] = Σ_j query[j] · series[i + j]` for `i in 0..=n-m`.
///
/// Uses the FFT (reversed-query convolution trick from MASS). Returns an
/// empty vector if the query is longer than the series or empty.
pub fn sliding_dot_product(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    let n = series.len();
    if m == 0 || m > n {
        return Vec::new();
    }
    // Convolve series with the reversed query: pick out lags m-1 .. n-1.
    let size = next_pow2(n + m);
    let mut qa = vec![Complex::default(); size];
    for (i, &q) in query.iter().enumerate() {
        qa[m - 1 - i].re = q; // reversed
    }
    let mut sa = vec![Complex::default(); size];
    for (i, &s) in series.iter().enumerate() {
        sa[i].re = s;
    }
    fft_in_place(&mut qa, false);
    fft_in_place(&mut sa, false);
    for (a, b) in qa.iter_mut().zip(&sa) {
        *a = a.mul(*b);
    }
    let conv = ifft(qa);
    (0..=n - m).map(|i| conv[i + m - 1]).collect()
}

/// Direct `O(n·m)` sliding dot product — reference implementation used in
/// tests and for very short inputs where FFT overhead dominates.
pub fn sliding_dot_product_naive(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    let n = series.len();
    if m == 0 || m > n {
        return Vec::new();
    }
    (0..=n - m).map(|i| query.iter().zip(&series[i..i + m]).map(|(a, b)| a * b).sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    fn fft_roundtrip() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.7).sin() + 0.3 * (i as f64)).collect();
        let spec = rfft(&x, 64);
        let back = ifft(spec);
        for i in 0..64 {
            assert!((back[i] - x[i]).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::default(); 8];
        buf[0].re = 1.0;
        fft_in_place(&mut buf, false);
        for c in &buf {
            assert!((c.re - 1.0).abs() < 1e-12);
            assert!(c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<f64> = (0..32).map(|i| ((i * i) % 7) as f64 - 3.0).collect();
        let spec = rfft(&x, 32);
        let t_energy: f64 = x.iter().map(|v| v * v).sum();
        let f_energy: f64 =
            spec.iter().map(|c| c.re * c.re + c.im * c.im).sum::<f64>() / spec.len() as f64;
        assert!((t_energy - f_energy).abs() < 1e-8);
    }

    #[test]
    fn sliding_dot_product_matches_naive() {
        let series: Vec<f64> = (0..97).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let query: Vec<f64> = (0..13).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let fast = sliding_dot_product(&query, &series);
        let slow = sliding_dot_product_naive(&query, &series);
        assert_eq!(fast.len(), slow.len());
        for i in 0..fast.len() {
            assert!((fast[i] - slow[i]).abs() < 1e-8, "i={i}: {} vs {}", fast[i], slow[i]);
        }
    }

    #[test]
    fn sliding_dot_product_degenerate_inputs() {
        assert!(sliding_dot_product(&[], &[1.0]).is_empty());
        assert!(sliding_dot_product(&[1.0, 2.0], &[1.0]).is_empty());
        let one = sliding_dot_product(&[2.0], &[1.0, 3.0]);
        assert_eq!(one.len(), 2);
        assert!((one[0] - 2.0).abs() < 1e-12);
        assert!((one[1] - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut buf = vec![Complex::default(); 6];
        fft_in_place(&mut buf, false);
    }
}
