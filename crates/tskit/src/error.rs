//! Error type shared by all crates in the workspace.

use std::fmt;

/// Errors produced by the time-series substrate and the algorithms built on
/// top of it.
#[derive(Debug, Clone, PartialEq)]
pub enum TsError {
    /// An input slice was shorter than the algorithm requires.
    TooShort {
        /// What was being validated (e.g. `"initialization window"`).
        what: &'static str,
        /// Required minimum length.
        need: usize,
        /// Actual length.
        got: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParam {
        /// Parameter name.
        name: &'static str,
        /// Human-readable description of the violation.
        msg: String,
    },
    /// A linear system could not be solved (singular / not positive definite).
    Singular {
        /// Index of the pivot that failed.
        pivot: usize,
    },
    /// Input contained NaN or infinite values where finite ones are required.
    NonFinite {
        /// Index of the offending value.
        index: usize,
    },
    /// I/O error from the experiment harness helpers.
    Io(String),
}

impl fmt::Display for TsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsError::TooShort { what, need, got } => {
                write!(f, "{what}: need at least {need} points, got {got}")
            }
            TsError::InvalidParam { name, msg } => {
                write!(f, "invalid parameter `{name}`: {msg}")
            }
            TsError::Singular { pivot } => {
                write!(f, "linear system is singular or indefinite at pivot {pivot}")
            }
            TsError::NonFinite { index } => write!(f, "non-finite value at index {index}"),
            TsError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for TsError {}

impl From<std::io::Error> for TsError {
    fn from(e: std::io::Error) -> Self {
        TsError::Io(e.to_string())
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, TsError>;

/// Validates that every value in `y` is finite.
pub fn check_finite(y: &[f64]) -> Result<()> {
    match y.iter().position(|v| !v.is_finite()) {
        Some(index) => Err(TsError::NonFinite { index }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TsError::TooShort { what: "init window", need: 10, got: 3 };
        assert!(e.to_string().contains("init window"));
        assert!(e.to_string().contains("10"));
        let e = TsError::InvalidParam { name: "period", msg: "must be >= 2".into() };
        assert!(e.to_string().contains("period"));
    }

    #[test]
    fn check_finite_flags_nan_position() {
        assert_eq!(check_finite(&[1.0, 2.0, 3.0]), Ok(()));
        assert_eq!(check_finite(&[1.0, f64::NAN]), Err(TsError::NonFinite { index: 1 }));
        assert_eq!(check_finite(&[f64::INFINITY]), Err(TsError::NonFinite { index: 0 }));
    }

    #[test]
    fn io_error_converts() {
        let ioe = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: TsError = ioe.into();
        assert!(matches!(e, TsError::Io(_)));
    }
}
