//! Descriptive statistics and correlation utilities.
//!
//! All functions are allocation-free unless they must return a vector, and
//! are defined for empty input where a sensible default exists (documented
//! per function).

/// Arithmetic mean; `0.0` for empty input.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Population variance; `0.0` for fewer than two points.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Minimum value; `+inf` for empty input.
pub fn min(x: &[f64]) -> f64 {
    x.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum value; `-inf` for empty input.
pub fn max(x: &[f64]) -> f64 {
    x.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Index of the maximum value (first one on ties); `None` for empty input.
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between order
/// statistics. Sorts a copy; `O(n log n)`. Returns `0.0` for empty input.
pub fn quantile(x: &[f64], q: f64) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = x.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Median via [`quantile`] with `q = 0.5`.
pub fn median(x: &[f64]) -> f64 {
    quantile(x, 0.5)
}

/// Median absolute deviation (unscaled).
pub fn mad(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = median(x);
    let dev: Vec<f64> = x.iter().map(|v| (v - m).abs()).collect();
    median(&dev)
}

/// Mean absolute error between two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mae(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mae: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Mean squared error between two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64
}

/// Z-normalizes `x` in place; returns `(mean, std)`. If the standard
/// deviation is below `eps`, only the mean is removed (std treated as 1).
pub fn znormalize(x: &mut [f64], eps: f64) -> (f64, f64) {
    let m = mean(x);
    let s = std_dev(x);
    let denom = if s < eps { 1.0 } else { s };
    for v in x.iter_mut() {
        *v = (*v - m) / denom;
    }
    (m, denom)
}

/// Sample autocorrelation function for lags `0..=max_lag` (biased estimator,
/// the convention used by TSB-UAD's period detector).
pub fn acf(x: &[f64], max_lag: usize) -> Vec<f64> {
    let n = x.len();
    let m = mean(x);
    let denom: f64 = x.iter().map(|v| (v - m) * (v - m)).sum();
    let mut out = Vec::with_capacity(max_lag + 1);
    if denom <= f64::EPSILON || n == 0 {
        out.resize(max_lag + 1, 0.0);
        if max_lag < out.len() {
            out[0] = 1.0;
        }
        return out;
    }
    for lag in 0..=max_lag.min(n.saturating_sub(1)) {
        let num: f64 = (0..n - lag).map(|i| (x[i] - m) * (x[i + lag] - m)).sum();
        out.push(num / denom);
    }
    out.resize(max_lag + 1, 0.0);
    out
}

/// First differences `x[i+1] - x[i]`; empty for input shorter than 2.
pub fn diff(x: &[f64]) -> Vec<f64> {
    if x.len() < 2 {
        return Vec::new();
    }
    x.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Lag-`k` seasonal differences `x[i+k] - x[i]`.
pub fn seasonal_diff(x: &[f64], k: usize) -> Vec<f64> {
    if x.len() <= k || k == 0 {
        return Vec::new();
    }
    (0..x.len() - k).map(|i| x[i + k] - x[i]).collect()
}

/// Strength of seasonality in `[0, 1]` following Hyndman's FPP definition:
/// `max(0, 1 - var(residual) / var(seasonal + residual))` computed from a
/// crude moving-average decomposition with period `t`.
pub fn seasonal_strength(x: &[f64], t: usize) -> f64 {
    if t < 2 || x.len() < 3 * t {
        return 0.0;
    }
    let trend = crate::smooth::centered_moving_average(x, t);
    let detrended: Vec<f64> = x.iter().zip(&trend).map(|(v, tr)| v - tr).collect();
    // Per-phase means form the seasonal estimate.
    let mut phase_sum = vec![0.0; t];
    let mut phase_cnt = vec![0usize; t];
    for (i, &d) in detrended.iter().enumerate() {
        phase_sum[i % t] += d;
        phase_cnt[i % t] += 1;
    }
    let seasonal: Vec<f64> = (0..detrended.len())
        .map(|i| phase_sum[i % t] / phase_cnt[i % t].max(1) as f64)
        .collect();
    let resid: Vec<f64> = detrended.iter().zip(&seasonal).map(|(d, s)| d - s).collect();
    let var_r = variance(&resid);
    let var_sr = variance(&detrended);
    if var_sr <= f64::EPSILON {
        return 0.0;
    }
    (1.0 - var_r / var_sr).max(0.0)
}

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current population variance (`0.0` with fewer than two points).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Current population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&x) - 2.5).abs() < 1e-12);
        assert!((variance(&x) - 1.25).abs() < 1e-12);
        assert!((std_dev(&x) - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn quantiles_and_median() {
        let x = [3.0, 1.0, 2.0];
        assert!((median(&x) - 2.0).abs() < 1e-12);
        assert!((quantile(&x, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&x, 1.0) - 3.0).abs() < 1e-12);
        assert!((quantile(&x, 0.25) - 1.5).abs() < 1e-12);
        assert!((mad(&[1.0, 1.0, 4.0]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn errors_match_hand_computation() {
        assert!((mae(&[1.0, 2.0], &[2.0, 0.0]) - 1.5).abs() < 1e-12);
        assert!((mse(&[1.0, 2.0], &[2.0, 0.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn znormalize_zero_mean_unit_std() {
        let mut x = vec![2.0, 4.0, 6.0, 8.0];
        znormalize(&mut x, 1e-12);
        assert!(mean(&x).abs() < 1e-12);
        assert!((std_dev(&x) - 1.0).abs() < 1e-12);
        // constant input only gets centred
        let mut c = vec![3.0, 3.0];
        znormalize(&mut c, 1e-12);
        assert_eq!(c, vec![0.0, 0.0]);
    }

    #[test]
    fn acf_of_periodic_signal_peaks_at_period() {
        let n = 400;
        let t = 20usize;
        let x: Vec<f64> =
            (0..n).map(|i| (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()).collect();
        let a = acf(&x, 3 * t);
        assert!((a[0] - 1.0).abs() < 1e-9);
        // lag T correlation should be close to 1 and much higher than lag T/2
        assert!(a[t] > 0.9, "acf at period = {}", a[t]);
        assert!(a[t / 2] < 0.0);
    }

    #[test]
    fn diff_and_seasonal_diff() {
        assert_eq!(diff(&[1.0, 3.0, 6.0]), vec![2.0, 3.0]);
        assert_eq!(seasonal_diff(&[1.0, 2.0, 3.0, 4.0], 2), vec![2.0, 2.0]);
        assert!(seasonal_diff(&[1.0], 2).is_empty());
        assert!(diff(&[1.0]).is_empty());
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn running_stats_matches_batch() {
        let x = [0.5, -1.0, 2.5, 3.0, 3.0, -2.0];
        let mut rs = RunningStats::new();
        for &v in &x {
            rs.push(v);
        }
        assert_eq!(rs.count(), 6);
        assert!((rs.mean() - mean(&x)).abs() < 1e-12);
        assert!((rs.variance() - variance(&x)).abs() < 1e-12);
    }

    #[test]
    fn seasonal_strength_separates_strong_and_weak() {
        let n = 600;
        let t = 24usize;
        let strong: Vec<f64> =
            (0..n).map(|i| (2.0 * std::f64::consts::PI * i as f64 / t as f64).sin()).collect();
        // deterministic pseudo-noise, weak seasonality
        let weak: Vec<f64> = (0..n)
            .map(|i| {
                let j = (i * 2654435761usize) % 1000;
                j as f64 / 1000.0
            })
            .collect();
        assert!(seasonal_strength(&strong, t) > 0.9);
        assert!(seasonal_strength(&weak, t) < 0.5);
    }
}
