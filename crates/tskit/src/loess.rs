//! LOESS (LOcal regrESSion) smoothing — the workhorse of STL.
//!
//! Follows Cleveland et al. (1990): tri-cube distance weights over the `q`
//! nearest neighbours, optional robustness weights, polynomial degree 0–2,
//! and the `jump` speed-up that fits only every `jump`-th point and linearly
//! interpolates in between.

// index recurrences here mirror the published algorithms; iterator
// rewrites obscure the maths
#![allow(clippy::needless_range_loop)]
use crate::dense::{weighted_lstsq, Mat};

/// Tri-cube weight `(1 - u³)³` for `u = d / d_max ∈ [0, 1]`; zero outside.
#[inline]
pub fn tricube(u: f64) -> f64 {
    if u >= 1.0 {
        0.0
    } else {
        let t = 1.0 - u * u * u;
        t * t * t
    }
}

/// LOESS configuration.
#[derive(Debug, Clone)]
pub struct LoessConfig {
    /// Neighbourhood size `q` (number of points in each local fit). Values
    /// larger than the series are clamped.
    pub span: usize,
    /// Polynomial degree of the local fit: 0, 1 or 2.
    pub degree: usize,
    /// Fit every `jump`-th point and interpolate linearly between fits
    /// (1 = fit everywhere).
    pub jump: usize,
}

impl LoessConfig {
    /// Degree-1 LOESS with the given span, no jumping.
    pub fn new(span: usize) -> Self {
        LoessConfig { span: span.max(2), degree: 1, jump: 1 }
    }

    /// Sets the polynomial degree (clamped to 0..=2).
    pub fn degree(mut self, d: usize) -> Self {
        self.degree = d.min(2);
        self
    }

    /// Sets the jump parameter (≥ 1).
    pub fn jump(mut self, j: usize) -> Self {
        self.jump = j.max(1);
        self
    }
}

/// Evaluates the local weighted polynomial fit of `y` (indexed by position
/// `0..n`) at arbitrary position `x_eval`. `robustness`, when given, is
/// multiplied into the tri-cube weights (STL's outer-loop weights).
pub fn loess_point(
    y: &[f64],
    x_eval: f64,
    cfg: &LoessConfig,
    robustness: Option<&[f64]>,
) -> f64 {
    let n = y.len();
    debug_assert!(n > 0, "loess_point: empty input");
    if n == 1 {
        return y[0];
    }
    let q = cfg.span.min(n).max(2);
    // window of the q nearest integer positions to x_eval
    let center = x_eval.round().clamp(0.0, (n - 1) as f64) as usize;
    let mut lo = center.saturating_sub(q / 2);
    if lo + q > n {
        lo = n - q;
    }
    // widen toward the true nearest set (handles x_eval outside [lo, lo+q))
    while lo > 0 && (x_eval - (lo - 1) as f64).abs() < ((lo + q - 1) as f64 - x_eval).abs() {
        lo -= 1;
    }
    while lo + q < n && ((lo + q) as f64 - x_eval).abs() < (x_eval - lo as f64).abs() {
        lo += 1;
    }
    let hi = lo + q; // exclusive
    let mut dmax: f64 = 0.0;
    for j in lo..hi {
        dmax = dmax.max((j as f64 - x_eval).abs());
    }
    if dmax <= 0.0 {
        dmax = 1.0;
    }
    // STL convention: for spans larger than the data, inflate the distance
    // denominator so weights stay positive across the window.
    if cfg.span > n {
        dmax += ((cfg.span - n) / 2) as f64;
    }
    let k = cfg.degree + 1;
    let m = hi - lo;
    let mut design = Mat::zeros(m, k);
    let mut rhs = vec![0.0; m];
    let mut weights = vec![0.0; m];
    let mut wsum = 0.0;
    for (row, j) in (lo..hi).enumerate() {
        let d = (j as f64 - x_eval).abs() / dmax;
        let mut w = tricube(d);
        if let Some(r) = robustness {
            w *= r[j];
        }
        let dx = j as f64 - x_eval;
        design[(row, 0)] = 1.0;
        if k > 1 {
            design[(row, 1)] = dx;
        }
        if k > 2 {
            design[(row, 2)] = dx * dx;
        }
        rhs[row] = y[j];
        weights[row] = w;
        wsum += w;
    }
    if wsum <= 1e-300 {
        // all weights vanished (e.g. robustness zeroed the window):
        // fall back to the unweighted window mean.
        return rhs.iter().sum::<f64>() / m as f64;
    }
    match weighted_lstsq(&design, &rhs, Some(&weights), 1e-12) {
        Ok(coef) => coef[0],
        Err(_) => {
            // degenerate fit: weighted mean
            let num: f64 = weights.iter().zip(&rhs).map(|(w, v)| w * v).sum();
            num / wsum
        }
    }
}

/// Smooths `y` with LOESS, returning a same-length vector. With
/// `cfg.jump > 1`, fits are computed on a grid and linearly interpolated.
pub fn loess(y: &[f64], cfg: &LoessConfig, robustness: Option<&[f64]>) -> Vec<f64> {
    let n = y.len();
    if n == 0 {
        return Vec::new();
    }
    if cfg.jump <= 1 || n <= 2 {
        return (0..n).map(|i| loess_point(y, i as f64, cfg, robustness)).collect();
    }
    // fitted anchor points: 0, jump, 2*jump, ..., and always n-1
    let mut anchors: Vec<usize> = (0..n).step_by(cfg.jump).collect();
    if *anchors.last().unwrap() != n - 1 {
        anchors.push(n - 1);
    }
    let fitted: Vec<f64> =
        anchors.iter().map(|&i| loess_point(y, i as f64, cfg, robustness)).collect();
    let mut out = vec![0.0; n];
    for w in 0..anchors.len() - 1 {
        let (a, b) = (anchors[w], anchors[w + 1]);
        let (fa, fb) = (fitted[w], fitted[w + 1]);
        let len = (b - a) as f64;
        for i in a..=b {
            let t = (i - a) as f64 / len;
            out[i] = fa * (1.0 - t) + fb * t;
        }
    }
    out
}

/// Smooths a series and also extrapolates one fitted value before the first
/// point and one after the last (positions `-1` and `n`). STL's
/// cycle-subseries smoothing requires this 2-point extension.
pub fn loess_extended(y: &[f64], cfg: &LoessConfig, robustness: Option<&[f64]>) -> Vec<f64> {
    let n = y.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n + 2);
    out.push(loess_point(y, -1.0, cfg, robustness));
    out.extend(loess(y, cfg, robustness));
    out.push(loess_point(y, n as f64, cfg, robustness));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tricube_shape() {
        assert!((tricube(0.0) - 1.0).abs() < 1e-12);
        assert_eq!(tricube(1.0), 0.0);
        assert_eq!(tricube(2.0), 0.0);
        assert!(tricube(0.5) > 0.0 && tricube(0.5) < 1.0);
    }

    #[test]
    fn loess_reproduces_linear_data_exactly() {
        let y: Vec<f64> = (0..50).map(|i| 3.0 + 0.5 * i as f64).collect();
        let cfg = LoessConfig::new(11);
        let s = loess(&y, &cfg, None);
        for i in 0..50 {
            assert!((s[i] - y[i]).abs() < 1e-8, "i={i}: {} vs {}", s[i], y[i]);
        }
    }

    #[test]
    fn degree2_reproduces_quadratic() {
        let y: Vec<f64> =
            (0..60).map(|i| 1.0 + 0.2 * i as f64 + 0.01 * (i * i) as f64).collect();
        let cfg = LoessConfig::new(15).degree(2);
        let s = loess(&y, &cfg, None);
        for i in 0..60 {
            assert!((s[i] - y[i]).abs() < 1e-6, "i={i}");
        }
    }

    #[test]
    fn smoothing_reduces_noise_variance() {
        // noisy constant -> smoothed variance should shrink a lot
        let y: Vec<f64> = (0..200).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let cfg = LoessConfig::new(21);
        let s = loess(&y, &cfg, None);
        assert!(crate::stats::variance(&s) < 0.05 * crate::stats::variance(&y));
    }

    #[test]
    fn jump_approximates_full_fit() {
        let y: Vec<f64> = (0..120)
            .map(|i| (i as f64 * 0.1).sin() + 0.05 * ((i * 7919) % 13) as f64)
            .collect();
        let full = loess(&y, &LoessConfig::new(25), None);
        let jumped = loess(&y, &LoessConfig::new(25).jump(5), None);
        let err = crate::stats::mae(&full, &jumped);
        assert!(err < 0.02, "jump interpolation error too large: {err}");
    }

    #[test]
    fn robustness_weights_suppress_outliers() {
        let mut y: Vec<f64> = (0..40).map(|i| i as f64 * 0.1).collect();
        y[20] = 50.0;
        let mut rob = vec![1.0; 40];
        rob[20] = 0.0;
        let cfg = LoessConfig::new(9);
        let with = loess(&y, &cfg, Some(&rob));
        // outlier has no influence: fitted value at 20 close to the line
        assert!((with[20] - 2.0).abs() < 0.05, "got {}", with[20]);
    }

    #[test]
    fn extension_extrapolates_linearly() {
        let y: Vec<f64> = (0..30).map(|i| 2.0 * i as f64).collect();
        let ext = loess_extended(&y, &LoessConfig::new(7), None);
        assert_eq!(ext.len(), 32);
        assert!((ext[0] - (-2.0)).abs() < 1e-6, "left extension {}", ext[0]);
        assert!((ext[31] - 60.0).abs() < 1e-6, "right extension {}", ext[31]);
    }

    #[test]
    fn single_point_input() {
        assert_eq!(loess(&[5.0], &LoessConfig::new(3), None), vec![5.0]);
    }
}
