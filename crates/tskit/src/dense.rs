//! Small dense linear algebra: Gaussian elimination and least squares.
//!
//! Used by LOESS (weighted polynomial fits), AR model fitting, and the
//! N-BEATS basis projections. These systems are tiny (a handful of unknowns)
//! so a straightforward partial-pivoting implementation is appropriate.

use crate::error::{Result, TsError};

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "Mat::from_vec: size mismatch");
        Mat { rows, cols, data }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "matvec: dimension mismatch");
        (0..self.rows).map(|i| (0..self.cols).map(|j| self[(i, j)] * x[j]).sum()).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Solves the square system `self * x = b` by Gaussian elimination with
    /// partial pivoting. `self` must be square.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve: matrix must be square");
        assert_eq!(b.len(), self.rows, "solve: rhs length mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // partial pivot
            let mut piv = col;
            let mut best = a[col * n + col].abs();
            for r in col + 1..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-300 {
                return Err(TsError::Singular { pivot: col });
            }
            if piv != col {
                for j in 0..n {
                    a.swap(col * n + j, piv * n + j);
                }
                x.swap(col, piv);
            }
            let d = a[col * n + col];
            for r in col + 1..n {
                let f = a[r * n + col] / d;
                if f == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= f * a[col * n + j];
                }
                x[r] -= f * x[col];
            }
        }
        for col in (0..n).rev() {
            let mut s = x[col];
            for j in col + 1..n {
                s -= a[col * n + j] * x[j];
            }
            x[col] = s / a[col * n + col];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Weighted least squares: minimizes `Σ w_i (a_i · x − b_i)²` via the normal
/// equations with an optional `ridge` on the diagonal for stability.
///
/// `design` is `m × k` with `m = b.len()`; weights default to 1 when `None`.
pub fn weighted_lstsq(
    design: &Mat,
    b: &[f64],
    weights: Option<&[f64]>,
    ridge: f64,
) -> Result<Vec<f64>> {
    let m = design.rows();
    let k = design.cols();
    assert_eq!(b.len(), m, "weighted_lstsq: rhs length mismatch");
    if let Some(w) = weights {
        assert_eq!(w.len(), m, "weighted_lstsq: weights length mismatch");
    }
    let mut ata = Mat::zeros(k, k);
    let mut atb = vec![0.0; k];
    for i in 0..m {
        let wi = weights.map_or(1.0, |w| w[i]);
        if wi == 0.0 {
            continue;
        }
        for p in 0..k {
            let ap = design[(i, p)];
            if ap == 0.0 {
                continue;
            }
            atb[p] += wi * ap * b[i];
            for q in p..k {
                ata[(p, q)] += wi * ap * design[(i, q)];
            }
        }
    }
    // mirror upper to lower, apply ridge
    for p in 0..k {
        ata[(p, p)] += ridge;
        for q in p + 1..k {
            let v = ata[(p, q)];
            ata[(q, p)] = v;
        }
    }
    ata.solve(&atb)
}

/// Ordinary least squares (no weights).
pub fn lstsq(design: &Mat, b: &[f64], ridge: f64) -> Result<Vec<f64>> {
    weighted_lstsq(design, b, None, ridge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        // [[2,1],[1,3]] x = [3,5] -> x = [4/5, 7/5]
        let a = Mat::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // leading zero forces a row swap
        let a = Mat::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(a.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn matmul_identity() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i3 = Mat::identity(3);
        assert_eq!(a.matmul(&i3), a);
        let at = a.transpose();
        assert_eq!(at.rows(), 3);
        assert_eq!(at[(2, 1)], 6.0);
    }

    #[test]
    fn lstsq_recovers_line() {
        // y = 2x + 1 exactly
        let n = 10;
        let mut design = Mat::zeros(n, 2);
        let mut b = vec![0.0; n];
        for i in 0..n {
            design[(i, 0)] = 1.0;
            design[(i, 1)] = i as f64;
            b[i] = 1.0 + 2.0 * i as f64;
        }
        let x = lstsq(&design, &b, 0.0).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn weights_downweight_outlier() {
        // one gross outlier, weight zero: perfect fit again
        let n = 6;
        let mut design = Mat::zeros(n, 2);
        let mut b = vec![0.0; n];
        let mut w = vec![1.0; n];
        for i in 0..n {
            design[(i, 0)] = 1.0;
            design[(i, 1)] = i as f64;
            b[i] = 3.0 - 0.5 * i as f64;
        }
        b[3] = 100.0;
        w[3] = 0.0;
        let x = weighted_lstsq(&design, &b, Some(&w), 0.0).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-9);
        assert!((x[1] + 0.5).abs() < 1e-9);
    }
}
