//! Property-based tests for the numeric substrate: these invariants are
//! what the OneShotSTL solver stack silently relies on.

use proptest::prelude::*;
use tskit::fft::{ifft, rfft, sliding_dot_product, sliding_dot_product_naive};
use tskit::linalg::{solve_tridiagonal, SymBanded};
use tskit::ring::RingBuffer;
use tskit::stats;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT round-trip is the identity for any real signal.
    #[test]
    fn fft_roundtrip_identity(x in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let spec = rfft(&x, x.len());
        let back = ifft(spec);
        for (i, v) in x.iter().enumerate() {
            prop_assert!((back[i] - v).abs() < 1e-6 * (1.0 + v.abs()));
        }
    }

    /// FFT sliding dot products match the naive O(n·m) computation.
    #[test]
    fn sliding_dot_product_agrees_with_naive(
        series in prop::collection::vec(-100f64..100.0, 8..120),
        qlen in 2usize..8,
    ) {
        prop_assume!(qlen <= series.len());
        let query = &series[..qlen];
        let fast = sliding_dot_product(query, &series);
        let slow = sliding_dot_product_naive(query, &series);
        prop_assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() < 1e-5 * (1.0 + b.abs()));
        }
    }

    /// Banded LDLᵀ solves diagonally dominant systems to high accuracy.
    #[test]
    fn banded_solver_solves_dd_systems(
        n in 2usize..40,
        w in 1usize..5,
        seed in 0u64..1000,
    ) {
        let w = w.min(n - 1);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = SymBanded::zeros(n, w);
        for i in 0..n {
            for d in 1..=w.min(i) {
                a.set(i, i - d, rnd());
            }
        }
        for i in 0..n {
            let mut row = 0.0;
            for j in 0..n {
                if j != i {
                    row += a.get(i, j).abs();
                }
            }
            a.set(i, i, row + 1.0);
        }
        let x_true: Vec<f64> = (0..n).map(|_| rnd() * 10.0).collect();
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for i in 0..n {
            prop_assert!((x[i] - x_true[i]).abs() < 1e-6, "i={} {} vs {}", i, x[i], x_true[i]);
        }
    }

    /// Thomas algorithm agrees with the banded solver on SPD tridiagonals.
    #[test]
    fn tridiagonal_matches_banded(n in 2usize..50, seed in 0u64..500) {
        let mut s = seed.wrapping_add(7);
        let mut rnd = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let sub: Vec<f64> = (0..n - 1).map(|_| rnd()).collect();
        let diag: Vec<f64> = (0..n).map(|_| 3.0 + rnd().abs()).collect();
        let b: Vec<f64> = (0..n).map(|_| rnd() * 5.0).collect();
        let x1 = solve_tridiagonal(&sub, &diag, &sub, &b).unwrap();
        let mut a = SymBanded::zeros(n, 1);
        for i in 0..n {
            a.set(i, i, diag[i]);
            if i + 1 < n {
                a.set(i + 1, i, sub[i]);
            }
        }
        let x2 = a.solve(&b).unwrap();
        for i in 0..n {
            prop_assert!((x1[i] - x2[i]).abs() < 1e-8);
        }
    }

    /// Ring buffer behaves like a Vec truncated to the last `cap` items.
    #[test]
    fn ring_buffer_matches_vec_model(
        cap in 1usize..20,
        values in prop::collection::vec(-1e6f64..1e6, 0..100),
    ) {
        let mut rb = RingBuffer::new(cap);
        for &v in &values {
            rb.push(v);
        }
        let start = values.len().saturating_sub(cap);
        let model = &values[start..];
        prop_assert_eq!(rb.len(), model.len());
        prop_assert_eq!(rb.to_vec(), model.to_vec());
        if !model.is_empty() {
            prop_assert_eq!(rb.back(0), *model.last().unwrap());
            prop_assert_eq!(rb.get(0), model[0]);
        }
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_monotone_and_bounded(
        x in prop::collection::vec(-1e4f64..1e4, 1..80),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = stats::quantile(&x, lo);
        let b = stats::quantile(&x, hi);
        prop_assert!(a <= b + 1e-12);
        prop_assert!(a >= stats::min(&x) - 1e-12);
        prop_assert!(b <= stats::max(&x) + 1e-12);
    }

    /// Welford streaming moments match the batch formulas.
    #[test]
    fn running_stats_match_batch(x in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let mut rs = stats::RunningStats::new();
        for &v in &x {
            rs.push(v);
        }
        prop_assert!((rs.mean() - stats::mean(&x)).abs() < 1e-6);
        prop_assert!((rs.variance() - stats::variance(&x)).abs() < 1e-4 * (1.0 + stats::variance(&x)));
    }

    /// ACF is 1 at lag 0 and bounded by 1 in magnitude.
    #[test]
    fn acf_is_normalized(x in prop::collection::vec(-1e2f64..1e2, 3..120), lags in 1usize..20) {
        let a = stats::acf(&x, lags);
        prop_assert!((a[0] - 1.0).abs() < 1e-9 || stats::variance(&x) < 1e-12);
        for v in &a {
            prop_assert!(v.abs() <= 1.0 + 1e-9);
        }
    }
}
