//! Vendored minimal stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, covering exactly the API surface this workspace uses:
//!
//! - [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] (deterministic
//!   xoshiro256++ seeded via SplitMix64 — *not* bit-compatible with the real
//!   `rand::rngs::StdRng`, but every workspace caller seeds explicitly and
//!   only relies on reproducibility within this implementation),
//! - [`Rng::gen_range`] over float/integer `Range` / `RangeInclusive`,
//! - [`Rng::gen`], [`Rng::gen_bool`],
//! - [`seq::SliceRandom::shuffle`].
//!
//! The container building this repo has no network access, so the real
//! crates.io dependency cannot be fetched; this keeps the workspace
//! self-contained and dependency-free as required by the fleet design.

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a deterministically-seeded generator from a `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Raw generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1)
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a value of `T` from its full "standard" distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a uniform sampler over a bounded range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges that can be sampled from (subset of
/// `rand::distributions::uniform::SampleRange`). The target type is tied
/// to the range's element type, so `gen_range(0.0..1.0)` infers `f64`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(lo, hi, true, rng)
    }
}

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo < hi, "empty float sample range");
                lo + unit_f64(rng.next_u64()) as $t * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f64, f32);

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let (lo, hi) = (lo as i128, hi as i128);
                let hi = if inclusive { hi + 1 } else { hi };
                assert!(lo < hi, "empty integer sample range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The "standard" distribution of a type (subset of
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one sample of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(5..10);
            assert!((5..10).contains(&n));
            let m: usize = rng.gen_range(5..=10);
            assert!((5..=10).contains(&m));
            let s: i64 = rng.gen_range(-4i64..-1);
            assert!((-4..-1).contains(&s));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
