//! Sequence utilities (subset of `rand::seq`).

use crate::RngCore;

/// In-place slice operations (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Shuffles the slice uniformly (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}
