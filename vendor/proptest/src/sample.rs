//! Sampling strategies (subset of `proptest::sample`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy drawing uniformly from a fixed set of options.
pub struct Select<T> {
    options: Vec<T>,
}

/// Mirrors `proptest::sample::select(options)`.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.usize_in(0, self.options.len())].clone()
    }
}
