//! The [`Strategy`] trait and the range strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A way of generating values of `Value` (no shrinking in this stand-in).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "empty integer strategy range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32);
