//! Case-count configuration and the deterministic case generator.

/// Marker returned by a rejected (`prop_assume!`-filtered) case.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Subset of `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic 64-bit generator (SplitMix64) driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fixed-seed generator: property runs are reproducible.
    #[allow(clippy::new_without_default)]
    pub fn deterministic() -> Self {
        TestRng { state: 0x5DEECE66D_u64 }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[lo, hi)` over `usize`.
    #[inline]
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty usize range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}
