//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy producing `Vec`s of `element` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Mirrors `proptest::collection::vec(element, size_range)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start < self.size.end {
            rng.usize_in(self.size.start, self.size.end)
        } else {
            self.size.start
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
