//! Vendored minimal stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, implementing the
//! subset this workspace's property tests use:
//!
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! - range strategies over `f64` / integer types,
//! - `prop::collection::vec(strategy, size_range)`,
//! - `prop::sample::select(vec![...])`,
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! No shrinking is performed: a failing case panics with the sampled inputs
//! in the message instead. Cases are generated from a fixed seed, so runs
//! are deterministic.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The common import bundle, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Mirrors the `prop` module re-export of the real prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(100);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::Rejected> {
                    $body
                    Ok(())
                })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
            assert!(
                accepted >= config.cases / 2,
                "proptest {}: too many rejected cases ({} accepted of {} attempts)",
                stringify!($name),
                accepted,
                attempts
            );
        }
    )*};
}

/// Panics (failing the case) when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Panics (failing the case) when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Rejects the current case (it is re-drawn) when the condition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}
