//! Vendored minimal stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! covering the subset this workspace's `benches/` use: benchmark groups,
//! [`BenchmarkId`], `bench_with_input` / `bench_function`, per-group sample
//! size and timing knobs, and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is a simple calibrated loop: each benchmark is warmed up for
//! `warm_up_time`, then timed in batches until `measurement_time` elapses,
//! and the mean/min per-iteration wall time is printed. No statistics,
//! plots, or baselines — just enough to keep `cargo bench` meaningful
//! without network access to the real crate.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark harness entry point (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let cfg = self.clone();
        BenchmarkGroup { _parent: self, name: name.into(), cfg }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.clone(), &name.to_string(), &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    cfg: Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Sets the warm-up budget for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&self.cfg, &label, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labelled by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.cfg, &label, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Labels a benchmark as `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// Labels a benchmark by parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher<'a> {
    cfg: &'a Criterion,
    /// Mean per-iteration nanoseconds of the last `iter` call.
    result: Option<(f64, f64)>,
}

impl Bencher<'_> {
    /// Times `routine`, first warming up, then sampling until the
    /// measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up: also calibrates the per-iteration cost
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.cfg.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        // choose a batch size so each sample takes ~measurement_time/samples
        let sample_budget =
            self.cfg.measurement_time.as_secs_f64() / self.cfg.sample_size as f64;
        let batch = ((sample_budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
        let mut means = Vec::with_capacity(self.cfg.sample_size);
        let run_start = Instant::now();
        for _ in 0..self.cfg.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            means.push(t0.elapsed().as_secs_f64() / batch as f64);
            if run_start.elapsed() > self.cfg.measurement_time.mul_f64(2.0) {
                break; // budget blow-out guard for very slow routines
            }
        }
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        self.result = Some((mean * 1e9, min * 1e9));
    }
}

fn run_one(cfg: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { cfg, result: None };
    f(&mut b);
    match b.result {
        Some((mean_ns, min_ns)) => {
            println!("{label:<50} mean {:>12}  min {:>12}", fmt_ns(mean_ns), fmt_ns(min_ns));
        }
        None => println!("{label:<50} (no measurement)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Mirrors `criterion::black_box` (re-export of the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
