//! # oneshotstl-suite — umbrella crate
//!
//! Re-exports the whole OneShotSTL reproduction workspace behind one
//! dependency, and hosts the runnable examples and the cross-crate
//! integration tests.
//!
//! ```
//! use oneshotstl_suite::prelude::*;
//!
//! let period = 24;
//! let y: Vec<f64> = (0..480)
//!     .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin())
//!     .collect();
//! let mut m = OneShotStl::new(OneShotStlConfig::default());
//! m.init(&y[..4 * period], period).unwrap();
//! let p = m.update(1.0);
//! assert!((p.trend + p.seasonal + p.residual - 1.0).abs() < 1e-9);
//! ```

pub use anomaly;
pub use decomp;
pub use fleet;
pub use forecast;
pub use neural;
pub use oneshotstl as core;
pub use tskit;
pub use tsmetrics as metrics;

/// The most common imports in one place.
pub mod prelude {
    pub use anomaly::{Damp, NormA, Sand, StdNSigma, Stompi, TsadMethod};
    pub use decomp::{
        BatchDecomposer, OnlineDecomposer, OnlineRobustStl, OnlineStl, RobustStl, Stl, Windowed,
    };
    pub use fleet::{FleetConfig, FleetEngine, PeriodPolicy, Record, ScoredPoint, SeriesKey};
    pub use forecast::{Forecaster, OnlineForecaster, StdOnlineForecaster};
    pub use oneshotstl::oneshot::{OneShotStlConfig, ShiftPolicy};
    pub use oneshotstl::system::Lambdas;
    pub use oneshotstl::{
        Fusion, JointStl, ModifiedJointStlRef, NSigma, OneShotStl, ResidualScorer, ScoreConfig,
        StdAnomalyDetector, StdForecaster,
    };
    pub use tskit::{DecompPoint, Decomposition, LabeledSeries};
    pub use tsmetrics::{kdd21_score, roc_auc, vus_roc, DecompErrors};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_types_are_usable() {
        let _cfg = OneShotStlConfig::default();
        let _n = NSigma::new(5.0);
        let d = Decomposition::zeros(3);
        assert_eq!(d.len(), 3);
    }
}
